/// \file maxmin.hpp
/// The unifying MaxMin fairness model at the heart of SURF (paper:
/// "allocate as much capacity to all tasks in a way that maximizes the
/// minimum capacity allocation over all tasks").
///
/// The system consists of
///  * constraints — resources with a capacity C_c (CPU flop/s, link byte/s),
///  * variables   — activity rates v_i, optionally upper-bounded (b_i) and
///                  weighted (w_i, growth share / priority),
///  * elements    — "variable i consumes coeff * v_i of constraint c".
///
/// solve() computes the weighted max-min fair allocation by progressive
/// filling: all active variables grow proportionally to their weight until a
/// constraint saturates (shared) or a variable hits its bound; saturated
/// participants freeze and filling continues. Fatpipe (non-shared)
/// constraints cap each variable individually instead of dividing capacity —
/// the behaviour of an over-provisioned backbone.
///
/// The same solver is used for computation, communication, their
/// interference, and parallel tasks, exactly as the paper describes.
///
/// ## Solver internals: dirty sets and partial invalidation
///
/// Re-running progressive filling over the whole system on every state
/// change is O(constraints x elements x filling rounds) — the cost that kept
/// the original SURF from scaling. Instead, the system tracks *dirtiness* at
/// the granularity of individual variables and constraints:
///
///  * every mutation (new_variable, expand, release_variable, set_weight,
///    set_bound, set_capacity) marks the touched variable/constraint dirty —
///    no-op mutations (setting a value to itself) mark nothing;
///  * solve() computes the transitive closure of the dirty seeds over the
///    bipartite variable-constraint graph. Because the max-min allocation of
///    a connected component is independent of every other component, this
///    closure is exactly the union of the components whose allocation can
///    have changed;
///  * progressive filling then runs restricted to that closure. Allocations
///    of untouched components are left frozen, so the per-event cost is
///    O(affected subgraph), not O(whole system);
///  * when the closure covers more than half of the live variables, solve()
///    falls back to solve_full() — the from-scratch path, also available
///    directly for equivalence testing;
///  * changed_variables() reports which allocations moved in the last
///    solve(), letting callers (the SURF engine) refresh only those rates.
///
/// The decomposition is sound because progressive filling has a unique fixed
/// point (the weighted max-min fair allocation), and disjoint components
/// share no constraint: filling them together or separately yields the same
/// allocation.
///
/// ## Data layout: element arena and SoA hot fields
///
/// At scale the solver is memory-bound, not compute-bound: a churn event
/// touches a handful of variables/constraints, and the cost is dominated by
/// the cache lines those touches pull in. The layout is therefore organized
/// around density and reuse rather than around per-object encapsulation:
///
///  * **Element arena.** The incidence lists (which variables sit on a
///    constraint; which constraints a variable crosses) are not per-object
///    `std::vector`s but unrolled linked lists of 4-entry nodes living in one
///    shared, chunked arena. A node packs 4 (peer id, coefficient) pairs in
///    56 bytes; a list is a chain of node indices. Since the common
///    exec/comm case has degree <= 4 (one CPU, or a couple of route links),
///    the fast path is a single node — one pointer chase, one cache line.
///    Nodes are recycled through an index-linked free list, so steady-state
///    churn re-uses the same (cache-hot) lines instead of walking the heap
///    allocator. Chunks (256 nodes, ~14 KiB) give address stability without
///    vector-growth copies.
///  * **SoA hot fields.** The fields progressive filling actually reads per
///    round (`value`, `weight`, `bound`, `active`, per-constraint
///    `remaining`) are parallel arrays indexed by id, scanned linearly in
///    solve_subset; cold metadata does not share their cache lines.
///  * **Id recycling.** Variable *and* constraint ids are recycled through
///    free lists (release_variable / release_constraint), keeping the id
///    space — and with it every parallel array — dense under churn.
///
/// Invariants the arena maintains:
///  * element lists contain only live peers: release_variable eagerly
///    removes the variable's entries from every constraint list it was on
///    (and release_constraint symmetrically), so a recycled id can never
///    revive a stale element;
///  * an (var, cnst) incidence appears exactly once per expand() call —
///    expanding twice yields two entries, matching the additive consumption
///    semantics of the old layout;
///  * the per-id degree counters track live entries, so degree introspection
///    is O(1) and the engine can reach "all actions on a failed resource"
///    in O(degree) via for_each_variable_on().
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace sg::core {

class MaxMinSystem {
public:
  using VarId = int;
  using CnstId = int;
  static constexpr double kNoBound = -1.0;
  /// Rate assigned to a variable that no constraint or bound restricts.
  static constexpr double kUnlimited = 1e30;

  /// Create a resource constraint. `shared`: capacity divided among users;
  /// otherwise each user is individually capped (fatpipe).
  CnstId new_constraint(double capacity, bool shared = true);

  /// Release a constraint: its caps/shares disappear and every variable that
  /// was on it is freed to grow. The id is recycled by a later
  /// new_constraint. No-op when already released.
  void release_constraint(CnstId cnst);

  /// Create an activity variable. weight > 0 makes it active (its allocation
  /// grows proportionally to weight); weight == 0 suspends it (allocation 0).
  VarId new_variable(double weight, double bound = kNoBound);

  /// Declare that variable consumes `coeff` units of `cnst` per unit of rate.
  /// Throws xbt::InvalidArgument on an out-of-range id or a released
  /// variable/constraint.
  void expand(CnstId cnst, VarId var, double coeff = 1.0);

  /// Release a variable (its consumption disappears from all constraints).
  void release_variable(VarId var);

  void set_capacity(CnstId cnst, double capacity);
  double capacity(CnstId cnst) const;
  void set_weight(VarId var, double weight);
  double weight(VarId var) const;
  void set_bound(VarId var, double bound);
  double bound(VarId var) const;

  /// Allocation computed by the last solve().
  double value(VarId var) const;

  /// Total consumption of a constraint under the last solution
  /// (sum for shared constraints, max for fatpipe).
  double usage(CnstId cnst) const;

  /// Number of live (not released) variables.
  size_t variable_count() const { return live_vars_; }
  /// Number of live (not released) constraints.
  size_t constraint_count() const { return live_cnsts_; }

  /// Live entries on a constraint / live constraints under a variable (an id
  /// expanded twice on the same constraint counts twice).
  size_t constraint_degree(CnstId cnst) const;
  size_t variable_degree(VarId var) const;

  /// Visit every (constraint, coeff) incidence of a live variable. This is
  /// the engine's replacement for keeping its own per-action constraint
  /// list: the arena already has it.
  template <typename Fn>
  void for_each_constraint_of(VarId var, Fn&& fn) const {
    for (std::int32_t n = var_link_[static_cast<size_t>(var)].head; n != kNoNode; n = node(n).next) {
      const ElemNode& nd = node(n);
      for (std::int32_t k = 0; k < nd.count; ++k)
        fn(static_cast<CnstId>(nd.id[k]), nd.coeff[k]);
    }
  }

  /// Visit every (variable, coeff) incidence on a live constraint — the
  /// cnst -> users index failure propagation runs on. O(degree). The
  /// callback must not mutate the system; collect first, then mutate.
  template <typename Fn>
  void for_each_variable_on(CnstId cnst, Fn&& fn) const {
    for (std::int32_t n = cnst_core_[static_cast<size_t>(cnst)].head; n != kNoNode; n = node(n).next) {
      const ElemNode& nd = node(n);
      for (std::int32_t k = 0; k < nd.count; ++k)
        fn(static_cast<VarId>(nd.id[k]), nd.coeff[k]);
    }
  }

  /// Run progressive filling incrementally: only the connected components
  /// touched by a mutation since the last solve are recomputed; untouched
  /// allocations stay frozen. Idempotent between modifications.
  void solve();

  /// Recompute every allocation from scratch (the incremental path falls
  /// back to this when most of the system is dirty; tests use it to check
  /// incremental ≡ full).
  void solve_full();

  /// True when a mutation since the last solve may have changed allocations.
  bool needs_solve() const {
    return full_solve_pending_ || !dirty_vars_.empty() || !dirty_cnsts_.empty();
  }

  /// Variables whose allocation changed in the last solve()/solve_full().
  /// Valid until the next solve.
  const std::vector<VarId>& changed_variables() const { return changed_vars_; }

  /// Counters for observing the incremental behaviour (tests/benches).
  struct SolveStats {
    size_t solves = 0;        ///< solve() calls that had dirty work to do
    size_t full_solves = 0;   ///< of which ran the from-scratch path
    size_t vars_visited = 0;  ///< cumulative size of the re-solved subsets
  };
  const SolveStats& solve_stats() const { return stats_; }

  /// Footprint introspection (tests / the memory-tracking bench metrics).
  struct MemoryStats {
    size_t live_variables = 0;
    size_t live_constraints = 0;
    size_t arena_nodes_in_use = 0;     ///< nodes currently on some list
    size_t arena_nodes_allocated = 0;  ///< nodes ever created (>= in_use)
    size_t arena_bytes = 0;            ///< bytes held by arena chunks
    size_t soa_bytes = 0;              ///< bytes held by the parallel arrays
    size_t total_bytes() const { return arena_bytes + soa_bytes; }
  };
  MemoryStats memory_stats() const;

 private:
  // -- element arena ---------------------------------------------------------
  static constexpr std::int32_t kNoNode = -1;
  static constexpr std::int32_t kNodeEntries = 4;  ///< degree <= 4 fast path
  struct ElemNode {
    std::int32_t count;             ///< live entries in this node
    std::int32_t next;              ///< next node of the list (or free list)
    std::int32_t id[kNodeEntries];  ///< peer id: var ids on a constraint's
                                    ///< list, cnst ids on a variable's list
    double coeff[kNodeEntries];
  };
  static constexpr size_t kChunkShift = 8;
  static constexpr size_t kChunkNodes = size_t{1} << kChunkShift;  ///< 256 nodes / ~14 KiB

  ElemNode& node(std::int32_t i) {
    return chunks_[static_cast<size_t>(i) >> kChunkShift][static_cast<size_t>(i) & (kChunkNodes - 1)];
  }
  const ElemNode& node(std::int32_t i) const {
    return chunks_[static_cast<size_t>(i) >> kChunkShift][static_cast<size_t>(i) & (kChunkNodes - 1)];
  }
  std::int32_t alloc_node();
  void free_node(std::int32_t n);
  /// Append one (peer, coeff) entry to the list rooted at `head`.
  void list_insert(std::int32_t& head, std::int32_t peer, double coeff);
  /// Remove every entry whose id == peer; returns how many were removed.
  std::int32_t list_remove_all(std::int32_t& head, std::int32_t peer);
  /// Free the whole chain and reset head to kNoNode.
  void list_free(std::int32_t& head);

  void check_var(VarId var, const char* what) const;
  void check_cnst(CnstId cnst, const char* what) const;

  void mark_var_dirty(VarId var);
  /// need_traverse: the change affects users beyond the dirtied variable
  /// itself (capacity moved). Shared constraints always traverse.
  void mark_cnst_dirty(CnstId cnst, bool need_traverse);
  /// Progressive filling restricted to the given variables/constraints.
  /// Every live variable of a listed constraint must be listed too.
  void solve_subset(const std::vector<VarId>& svars, const std::vector<CnstId>& scnsts);

  // -- arena storage ---------------------------------------------------------
  std::vector<std::unique_ptr<ElemNode[]>> chunks_;
  std::int32_t free_nodes_ = kNoNode;  ///< index-linked through ElemNode::next
  std::int32_t arena_size_ = 0;        ///< nodes ever created
  size_t nodes_in_use_ = 0;

  // Per-id bookkeeping bits, one byte per id: the dirty/in-set/alive/active
  // states are always consulted together on the hot path, so packing them
  // costs one cache line per id instead of four.
  static constexpr unsigned char kFlagAlive = 1;
  static constexpr unsigned char kFlagDirty = 2;
  static constexpr unsigned char kFlagInSet = 4;
  static constexpr unsigned char kFlagActive = 8;    ///< vars: still growing in solve
  static constexpr unsigned char kFlagTraverse = 8;  ///< cnsts: closure must reach users
  static constexpr unsigned char kFlagShared = 16;   ///< cnsts: capacity is divided

  // -- constraint storage (indexed by CnstId) --------------------------------
  /// Capacity + arena list head + degree, fused: the solver always reads
  /// them together, and four constraints share a cache line.
  struct CnstCore {
    double capacity;
    std::int32_t head;    ///< arena list of users
    std::int32_t degree;  ///< live entries on that list
  };
  std::vector<CnstCore> cnst_core_;
  std::vector<unsigned char> cnst_flags_;
  std::vector<CnstId> free_cnsts_;
  size_t live_cnsts_ = 0;

  // -- variable storage: hot solve fields as SoA (indexed by VarId) ----------
  std::vector<double> var_weight_;
  std::vector<double> var_bound_;
  std::vector<double> var_value_;
  std::vector<unsigned char> var_flags_;
  struct VarLink {
    std::int32_t head;    ///< arena list of constraints
    std::int32_t degree;  ///< live entries on that list
  };
  std::vector<VarLink> var_link_;
  std::vector<VarId> free_vars_;
  size_t live_vars_ = 0;

  // -- dirty tracking --------------------------------------------------------
  std::vector<VarId> dirty_vars_;
  std::vector<CnstId> dirty_cnsts_;
  bool full_solve_pending_ = true;  ///< first solve is always full
  std::vector<VarId> changed_vars_;
  SolveStats stats_;

  // -- persistent scratch (reset only for the affected subset, so that an
  //    incremental solve never pays O(system size)) --------------------------
  std::vector<VarId> affected_vars_;
  std::vector<CnstId> affected_cnsts_;
  std::vector<char> traverse_cnst_;  ///< parallel to affected_cnsts_ in solve()
  std::vector<double> effective_bound_;
  std::vector<double> remaining_;
  std::vector<double> old_values_;        ///< parallel to the subset list
};

}  // namespace sg::core
