/// \file maxmin.hpp
/// The unifying MaxMin fairness model at the heart of SURF (paper:
/// "allocate as much capacity to all tasks in a way that maximizes the
/// minimum capacity allocation over all tasks").
///
/// The system consists of
///  * constraints — resources with a capacity C_c (CPU flop/s, link byte/s),
///  * variables   — activity rates v_i, optionally upper-bounded (b_i) and
///                  weighted (w_i, growth share / priority),
///  * elements    — "variable i consumes coeff * v_i of constraint c".
///
/// solve() computes the weighted max-min fair allocation by progressive
/// filling: all active variables grow proportionally to their weight until a
/// constraint saturates (shared) or a variable hits its bound; saturated
/// participants freeze and filling continues. Fatpipe (non-shared)
/// constraints cap each variable individually instead of dividing capacity —
/// the behaviour of an over-provisioned backbone.
///
/// The same solver is used for computation, communication, their
/// interference, and parallel tasks, exactly as the paper describes.
///
/// ## Solver internals: dirty sets and partial invalidation
///
/// Re-running progressive filling over the whole system on every state
/// change is O(constraints x elements x filling rounds) — the cost that kept
/// the original SURF from scaling. Instead, the system tracks *dirtiness* at
/// the granularity of individual variables and constraints:
///
///  * every mutation (new_variable, expand, release_variable, set_weight,
///    set_bound, set_capacity) marks the touched variable/constraint dirty —
///    no-op mutations (setting a value to itself) mark nothing;
///  * solve() computes the transitive closure of the dirty seeds over the
///    bipartite variable-constraint graph. Because the max-min allocation of
///    a connected component is independent of every other component, this
///    closure is exactly the union of the components whose allocation can
///    have changed;
///  * progressive filling then runs restricted to that closure. Allocations
///    of untouched components are left frozen, so the per-event cost is
///    O(affected subgraph), not O(whole system);
///  * when the closure covers more than half of the live variables, solve()
///    falls back to solve_full() — the from-scratch path, also available
///    directly for equivalence testing;
///  * changed_variables() reports which allocations moved in the last
///    solve(), letting callers (the SURF engine) refresh only those rates.
///
/// The decomposition is sound because progressive filling has a unique fixed
/// point (the weighted max-min fair allocation), and disjoint components
/// share no constraint: filling them together or separately yields the same
/// allocation.
///
/// ## Data layout: element arena and SoA hot fields
///
/// At scale the solver is memory-bound, not compute-bound: a churn event
/// touches a handful of variables/constraints, and the cost is dominated by
/// the cache lines those touches pull in. The layout is therefore organized
/// around density and reuse rather than around per-object encapsulation:
///
///  * **Element arena.** The incidence lists (which variables sit on a
///    constraint; which constraints a variable crosses) are not per-object
///    `std::vector`s but unrolled linked lists of 4-entry nodes living in one
///    shared, chunked arena. A node packs 4 (peer id, coefficient) pairs in
///    56 bytes; a list is a chain of node indices. Since the common
///    exec/comm case has degree <= 4 (one CPU, or a couple of route links),
///    the fast path is a single node — one pointer chase, one cache line.
///    Nodes are recycled through an index-linked free list, so steady-state
///    churn re-uses the same (cache-hot) lines instead of walking the heap
///    allocator. Chunks (256 nodes, ~14 KiB) give address stability without
///    vector-growth copies.
///  * **SoA hot fields.** The fields progressive filling actually reads per
///    round (`value`, `weight`, `bound`, `active`, per-constraint
///    `remaining`) are parallel arrays indexed by id, scanned linearly in
///    solve_subset; cold metadata does not share their cache lines.
///  * **Id recycling.** Variable *and* constraint ids are recycled through
///    free lists (release_variable / release_constraint), keeping the id
///    space — and with it every parallel array — dense under churn.
///
/// Invariants the arena maintains:
///  * element lists contain only live peers: release_variable eagerly
///    removes the variable's entries from every constraint list it was on
///    (and release_constraint symmetrically), so a recycled id can never
///    revive a stale element;
///  * an (var, cnst) incidence appears exactly once per expand() call —
///    expanding twice yields two entries, matching the additive consumption
///    semantics of the old layout;
///  * the per-id degree counters track live entries, so degree introspection
///    is O(1) and the engine can reach "all actions on a failed resource"
///    in O(degree) via for_each_variable_on().
///
/// ## ShardedMaxMin: per-zone solver shards with a backbone coupling layer
///
/// A single MaxMinSystem keeps every zone's variables and constraints in the
/// same id space, the same SoA arrays, and the same arena. The incremental
/// closure already makes a churn event O(affected component), but at 100k+
/// hosts the *memory* is shared: every zone's hot ids interleave in the same
/// arrays, so an intra-zone event pulls cache lines sized by the whole
/// platform. ShardedMaxMin splits the system into independent MaxMinSystem
/// shards — one per sealed zone plus shard 0, the *backbone* shard, holding
/// everything that is not zone-interior (WAN fat pipes, gateway links,
/// unzoned resources) — behind a façade that speaks global ids.
///
/// Invariants (the sharded ≡ global property sweeps pin these down):
///
///  * **Constraint placement.** Every constraint lives in exactly one shard,
///    chosen at creation (the engine takes it from the platform's shard map).
///  * **Variable replicas.** A variable lives in every shard a constraint of
///    its route lives in. Single-shard variables (the overwhelming majority:
///    intra-zone flows, execs, zone-local ptasks) are one local variable in
///    their shard. A cross-shard variable is a set of *replicas*, one local
///    variable per touched shard, each flagged kFlagLinked and each carrying
///    the shard-local incidences. Replicas always agree on weight and bound,
///    and after every solve() they agree exactly on value.
///  * **Local solves stay local.** A dirty closure that reaches no linked
///    replica is solved entirely inside its shard: no other shard's arrays
///    are read, written, or even looked at. This is what makes intra-zone
///    per-event cost independent of the total platform size.
///  * **Coupled groups solve jointly.** When a closure reaches a linked
///    replica, its sibling replicas are seeded dirty in their shards and the
///    closures are re-collected to a fixpoint; the union of the coupled
///    shards' closures is then solved by one cross-shard progressive-filling
///    pass (solve_group) that treats the replicas of a logical variable as a
///    single activity: it grows once per round (replicas apply the identical
///    delta * weight update, so their values stay bitwise equal), its
///    effective bound folds every shard's fatpipe caps, and freezing any
///    replica freezes all of them (copying the freezing replica's value so
///    no epsilon dust can split them). Progressive filling has a unique
///    fixed point, so the group pass computes exactly what one global system
///    would — the equivalence suites assert rates, completion order, and
///    clocks to 1e-9 against an unsharded engine.
///  * **Backbone locality.** Zone-interior churn never links (its routes
///    stay inside one shard), so only cross-zone flows — which all cross a
///    backbone-shard constraint — can couple shards, and the coupling set is
///    exactly the shards their routes touch.
///  * **Detached variables** (created but not yet expanded) belong to no
///    shard; solve() gives them the unconstrained allocation directly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace sg::core {

class ShardWorkers;
struct PhaseProbe;

class MaxMinSystem {
public:
  using VarId = int;
  using CnstId = int;
  static constexpr double kNoBound = -1.0;
  /// Rate assigned to a variable that no constraint or bound restricts.
  static constexpr double kUnlimited = 1e30;

  /// Create a resource constraint. `shared`: capacity divided among users;
  /// otherwise each user is individually capped (fatpipe).
  CnstId new_constraint(double capacity, bool shared = true);

  /// Release a constraint: its caps/shares disappear and every variable that
  /// was on it is freed to grow. The id is recycled by a later
  /// new_constraint. No-op when already released.
  void release_constraint(CnstId cnst);

  /// Create an activity variable. weight > 0 makes it active (its allocation
  /// grows proportionally to weight); weight == 0 suspends it (allocation 0).
  VarId new_variable(double weight, double bound = kNoBound);

  /// Declare that variable consumes `coeff` units of `cnst` per unit of rate.
  /// Throws xbt::InvalidArgument on an out-of-range id or a released
  /// variable/constraint.
  void expand(CnstId cnst, VarId var, double coeff = 1.0);

  /// Release a variable (its consumption disappears from all constraints).
  void release_variable(VarId var);

  void set_capacity(CnstId cnst, double capacity);
  double capacity(CnstId cnst) const;
  void set_weight(VarId var, double weight);
  double weight(VarId var) const;
  void set_bound(VarId var, double bound);
  double bound(VarId var) const;

  /// Allocation computed by the last solve().
  double value(VarId var) const;

  /// Total consumption of a constraint under the last solution
  /// (sum for shared constraints, max for fatpipe).
  double usage(CnstId cnst) const;

  /// Number of live (not released) variables.
  size_t variable_count() const { return live_vars_; }
  /// Number of live (not released) constraints.
  size_t constraint_count() const { return live_cnsts_; }

  /// Live entries on a constraint / live constraints under a variable (an id
  /// expanded twice on the same constraint counts twice).
  size_t constraint_degree(CnstId cnst) const;
  size_t variable_degree(VarId var) const;

  /// Visit every (constraint, coeff) incidence of a live variable. This is
  /// the engine's replacement for keeping its own per-action constraint
  /// list: the arena already has it.
  template <typename Fn>
  void for_each_constraint_of(VarId var, Fn&& fn) const {
    for (std::int32_t n = var_link_[static_cast<size_t>(var)].head; n != kNoNode; n = node(n).next) {
      const ElemNode& nd = node(n);
      for (std::int32_t k = 0; k < nd.count; ++k)
        fn(static_cast<CnstId>(nd.id[k]), nd.coeff[k]);
    }
  }

  /// Visit every (variable, coeff) incidence on a live constraint — the
  /// cnst -> users index failure propagation runs on. O(degree). The
  /// callback must not mutate the system; collect first, then mutate.
  template <typename Fn>
  void for_each_variable_on(CnstId cnst, Fn&& fn) const {
    for (std::int32_t n = cnst_core_[static_cast<size_t>(cnst)].head; n != kNoNode; n = node(n).next) {
      const ElemNode& nd = node(n);
      for (std::int32_t k = 0; k < nd.count; ++k)
        fn(static_cast<VarId>(nd.id[k]), nd.coeff[k]);
    }
  }

  /// Run progressive filling incrementally: only the connected components
  /// touched by a mutation since the last solve are recomputed; untouched
  /// allocations stay frozen. Idempotent between modifications.
  void solve();

  /// Recompute every allocation from scratch (the incremental path falls
  /// back to this when most of the system is dirty; tests use it to check
  /// incremental ≡ full).
  void solve_full();

  /// Whether escalating the collected closure to solve_full() is a win:
  /// false when the arena sweep it implies dwarfs the closure (sparse arena
  /// after churn or mass completions).
  bool full_solve_profitable() const;

  /// True when a mutation since the last solve may have changed allocations.
  bool needs_solve() const {
    return full_solve_pending_ || !dirty_vars_.empty() || !dirty_cnsts_.empty();
  }

  /// Variables whose allocation changed in the last solve()/solve_full().
  /// Valid until the next solve.
  const std::vector<VarId>& changed_variables() const { return changed_vars_; }

  /// Counters for observing the incremental behaviour (tests/benches).
  struct SolveStats {
    size_t solves = 0;        ///< solve() calls that had dirty work to do
    size_t full_solves = 0;   ///< of which ran the from-scratch path
    size_t vars_visited = 0;  ///< cumulative size of the re-solved subsets
  };
  const SolveStats& solve_stats() const { return stats_; }

  /// Footprint introspection (tests / the memory-tracking bench metrics).
  struct MemoryStats {
    size_t live_variables = 0;
    size_t live_constraints = 0;
    size_t arena_nodes_in_use = 0;     ///< nodes currently on some list
    size_t arena_nodes_allocated = 0;  ///< nodes ever created (>= in_use)
    size_t arena_bytes = 0;            ///< bytes held by arena chunks
    size_t soa_bytes = 0;              ///< bytes held by the parallel arrays
    size_t total_bytes() const { return arena_bytes + soa_bytes; }
  };
  MemoryStats memory_stats() const;

 private:
  friend class ShardedMaxMin;

  // -- element arena ---------------------------------------------------------
  static constexpr std::int32_t kNoNode = -1;
  static constexpr std::int32_t kNodeEntries = 4;  ///< degree <= 4 fast path
  struct ElemNode {
    std::int32_t count;             ///< live entries in this node
    std::int32_t next;              ///< next node of the list (or free list)
    std::int32_t id[kNodeEntries];  ///< peer id: var ids on a constraint's
                                    ///< list, cnst ids on a variable's list
    double coeff[kNodeEntries];
  };
  static constexpr size_t kChunkShift = 8;
  static constexpr size_t kChunkNodes = size_t{1} << kChunkShift;  ///< 256 nodes / ~14 KiB

  ElemNode& node(std::int32_t i) {
    return chunks_[static_cast<size_t>(i) >> kChunkShift][static_cast<size_t>(i) & (kChunkNodes - 1)];
  }
  const ElemNode& node(std::int32_t i) const {
    return chunks_[static_cast<size_t>(i) >> kChunkShift][static_cast<size_t>(i) & (kChunkNodes - 1)];
  }
  std::int32_t alloc_node();
  void free_node(std::int32_t n);
  /// Append one (peer, coeff) entry to the list rooted at `head`.
  void list_insert(std::int32_t& head, std::int32_t peer, double coeff);
  /// Remove every entry whose id == peer; returns how many were removed.
  std::int32_t list_remove_all(std::int32_t& head, std::int32_t peer);
  /// Free the whole chain and reset head to kNoNode.
  void list_free(std::int32_t& head);

  void check_var(VarId var, const char* what) const;
  void check_cnst(CnstId cnst, const char* what) const;

  void mark_var_dirty(VarId var);
  /// need_traverse: the change affects users beyond the dirtied variable
  /// itself (capacity moved). Shared constraints always traverse.
  void mark_cnst_dirty(CnstId cnst, bool need_traverse);

  // -- affected-closure collection -------------------------------------------
  // solve() and the sharded group solve share this machinery. A closure
  // "epoch" starts at the first closure_collect() after a commit; repeated
  // collects *extend* the affected sets with the closure of whatever dirty
  // seeds accumulated since (ShardedMaxMin seeds sibling replicas between
  // rounds), and closure_commit() clears the in-set markers. kFlagInSet
  // marks membership; kFlagTraverse doubles as the "users already queued"
  // marker during the epoch (it is free then: the dirty seeds that use it
  // are consumed at the start of each collect).
  bool closure_pending() const {
    return full_solve_pending_ || !dirty_vars_.empty() || !dirty_cnsts_.empty();
  }
  void closure_collect();
  void closure_commit();
  void closure_add_var(VarId v);
  void closure_add_cnst(CnstId c, bool traverse);

  /// Progressive filling restricted to the given variables/constraints.
  /// Every live variable of a listed constraint must be listed too.
  void solve_subset(const std::vector<VarId>& svars, const std::vector<CnstId>& scnsts);

  // -- arena storage ---------------------------------------------------------
  std::vector<std::unique_ptr<ElemNode[]>> chunks_;
  std::int32_t free_nodes_ = kNoNode;  ///< index-linked through ElemNode::next
  std::int32_t arena_size_ = 0;        ///< nodes ever created
  size_t nodes_in_use_ = 0;

  // Per-id bookkeeping bits, one byte per id: the dirty/in-set/alive/active
  // states are always consulted together on the hot path, so packing them
  // costs one cache line per id instead of four.
  static constexpr unsigned char kFlagAlive = 1;
  static constexpr unsigned char kFlagDirty = 2;
  static constexpr unsigned char kFlagInSet = 4;
  static constexpr unsigned char kFlagActive = 8;    ///< vars: still growing in solve
  static constexpr unsigned char kFlagTraverse = 8;  ///< cnsts: closure must reach users
  static constexpr unsigned char kFlagShared = 16;   ///< cnsts: capacity is divided
  static constexpr unsigned char kFlagLinked = 32;   ///< vars: replica of a cross-shard variable

  // -- constraint storage (indexed by CnstId) --------------------------------
  /// Capacity + arena list head + degree, fused: the solver always reads
  /// them together, and four constraints share a cache line.
  struct CnstCore {
    double capacity;
    std::int32_t head;    ///< arena list of users
    std::int32_t degree;  ///< live entries on that list
  };
  std::vector<CnstCore> cnst_core_;
  std::vector<unsigned char> cnst_flags_;
  std::vector<CnstId> free_cnsts_;
  size_t live_cnsts_ = 0;

  // -- variable storage: hot solve fields as SoA (indexed by VarId) ----------
  std::vector<double> var_weight_;
  std::vector<double> var_bound_;
  std::vector<double> var_value_;
  std::vector<unsigned char> var_flags_;
  struct VarLink {
    std::int32_t head;    ///< arena list of constraints
    std::int32_t degree;  ///< live entries on that list
  };
  std::vector<VarLink> var_link_;
  std::vector<VarId> free_vars_;
  size_t live_vars_ = 0;

  // -- dirty tracking --------------------------------------------------------
  std::vector<VarId> dirty_vars_;
  std::vector<CnstId> dirty_cnsts_;
  bool full_solve_pending_ = true;  ///< first solve is always full
  std::vector<VarId> changed_vars_;
  SolveStats stats_;

  // -- persistent scratch (reset only for the affected subset, so that an
  //    incremental solve never pays O(system size)) --------------------------
  std::vector<VarId> affected_vars_;
  std::vector<CnstId> affected_cnsts_;
  std::vector<CnstId> traverse_list_;  ///< closure: cnsts whose users must be added
  bool closure_open_ = false;
  bool closure_was_full_ = false;  ///< this epoch covered everything (first solve)
  size_t closure_vi_ = 0;  ///< worklist cursor into affected_vars_
  size_t closure_ti_ = 0;  ///< worklist cursor into traverse_list_
  std::vector<double> effective_bound_;
  std::vector<double> remaining_;
  std::vector<double> old_values_;        ///< parallel to the subset list
};

/// Façade over per-shard MaxMinSystem instances (see the header comment for
/// the invariants). Speaks global ids: the engine and tests use it exactly
/// like a MaxMinSystem, plus a shard argument on new_constraint_in(). With
/// one shard it degenerates to a single global system (the equivalence
/// baseline and the behaviour of unzoned platforms).
class ShardedMaxMin {
public:
  using VarId = MaxMinSystem::VarId;
  using CnstId = MaxMinSystem::CnstId;
  using ShardId = std::int32_t;
  static constexpr double kNoBound = MaxMinSystem::kNoBound;
  static constexpr double kUnlimited = MaxMinSystem::kUnlimited;
  /// Shard 0 holds everything that is not zone-interior: WAN fat pipes,
  /// gateway links, unzoned hosts. It is the only shard a cross-zone flow is
  /// guaranteed to touch.
  static constexpr ShardId kBackboneShard = 0;
  /// home_shard() results for variables that live in no single shard.
  static constexpr ShardId kDetachedShard = -1;  ///< no replica yet
  static constexpr ShardId kMultiShard = -2;     ///< replicas in several shards

  explicit ShardedMaxMin(int shard_count = 1);

  /// Re-shape the shard set; only legal while no constraint or variable
  /// exists (the engine sizes shards from the platform map up front).
  void init_shards(int shard_count);
  int shard_count() const { return static_cast<int>(shards_.size()); }

  /// Create a constraint in the backbone shard (MaxMinSystem-compatible).
  CnstId new_constraint(double capacity, bool shared = true) {
    return new_constraint_in(kBackboneShard, capacity, shared);
  }
  /// Create a constraint in a specific shard.
  CnstId new_constraint_in(ShardId shard, double capacity, bool shared = true);
  void release_constraint(CnstId cnst);
  ShardId shard_of_constraint(CnstId cnst) const;

  VarId new_variable(double weight, double bound = kNoBound);
  /// Registers the variable in the constraint's shard (creating a linked
  /// replica when that is a new shard for the variable), then expands there.
  void expand(CnstId cnst, VarId var, double coeff = 1.0);
  void release_variable(VarId var);

  /// Owning shard of a live variable: a shard id, kDetachedShard, or
  /// kMultiShard. O(1). The engine's parallel stepping routes on this:
  /// single-shard variables are finished inside their shard's lane,
  /// cross-shard ones are deferred to the serial epilogue.
  ShardId home_shard(VarId var) const { return vars_[static_cast<size_t>(var)].shard; }

  /// The shard-local half of release_variable(), for a variable whose
  /// replicas live in ONE shard (or nowhere): detaches it from its shard and
  /// kills the record, but does NOT recycle the global id. Safe to call
  /// concurrently for variables homed in different shards. Each released id
  /// must be handed to commit_released() (serially, in a deterministic
  /// order) before the id may be reused; throws on a kMultiShard variable.
  void release_variable_local(VarId var);
  /// Serial epilogue of release_variable_local(): recycle the ids.
  void commit_released(const VarId* ids, size_t count);

  void set_capacity(CnstId cnst, double capacity);
  double capacity(CnstId cnst) const;
  void set_weight(VarId var, double weight);
  double weight(VarId var) const;
  void set_bound(VarId var, double bound);
  double bound(VarId var) const;
  double value(VarId var) const;
  double usage(CnstId cnst) const;

  size_t variable_count() const { return live_vars_; }
  size_t constraint_count() const { return live_cnsts_; }
  size_t constraint_degree(CnstId cnst) const;
  size_t variable_degree(VarId var) const;
  /// Number of shards the variable currently has replicas in (0 = detached).
  int variable_shard_span(VarId var) const;

  /// Visit every (variable, coeff) incidence on a live constraint, with
  /// global variable ids (the engine's failure-propagation index).
  template <typename Fn>
  void for_each_variable_on(CnstId cnst, Fn&& fn) const {
    const CnstRec& c = cnsts_[static_cast<size_t>(cnst)];
    shards_[static_cast<size_t>(c.shard)].for_each_variable_on(
        c.local, [&](MaxMinSystem::VarId lv, double coeff) {
          fn(var_global_[static_cast<size_t>(c.shard)][static_cast<size_t>(lv)], coeff);
        });
  }

  /// Visit every (constraint, coeff) incidence of a live variable, with
  /// global constraint ids, across all of its replicas.
  template <typename Fn>
  void for_each_constraint_of(VarId var, Fn&& fn) const {
    for_each_replica(vars_[static_cast<size_t>(var)], [&](Replica rp) {
      shards_[static_cast<size_t>(rp.shard)].for_each_constraint_of(
          rp.local, [&](MaxMinSystem::CnstId lc, double coeff) {
            fn(cnst_global_[static_cast<size_t>(rp.shard)][static_cast<size_t>(lc)], coeff);
          });
    });
  }

  /// Solve only the dirty shards: shard-local incremental solves for
  /// uncoupled closures, one joint progressive-filling pass per coupled
  /// group. Coupled shards are partitioned (union-find over each linked
  /// variable's replica shards) into independent groups that touch disjoint
  /// shard sets, so with `workers` the uncoupled solves AND the group solves
  /// all fan out across the worker lanes; the dirty-closure fixpoint, the
  /// partition, and the changed-id aggregation stay serial, so the result
  /// (including the order of changed_variables()) is identical at every lane
  /// count. With `probe`, the fan-out's wall and per-lane busy times are
  /// recorded (serial fallback counts as lane 0).
  void solve(ShardWorkers* workers = nullptr, PhaseProbe* probe = nullptr);
  /// Recompute everything from scratch (equivalence testing).
  void solve_full();
  bool needs_solve() const;
  /// Global ids of the variables whose allocation changed in the last
  /// solve(); each cross-shard variable is reported once.
  const std::vector<VarId>& changed_variables() const { return changed_vars_; }

  /// Aggregated over shards (plus detached handling); per-shard stats are
  /// reachable through shard().
  MaxMinSystem::SolveStats solve_stats() const;
  /// Cross-shard joint solves run so far (0 as long as no closure ever
  /// reached a linked replica — the intra-zone locality check).
  size_t group_solve_count() const { return group_solves_; }
  MaxMinSystem::MemoryStats memory_stats() const;
  /// Read-only view of one shard (per-shard stats and footprint).
  const MaxMinSystem& shard(ShardId s) const { return shards_[static_cast<size_t>(s)]; }

private:
  static constexpr ShardId kDetached = kDetachedShard;  ///< no replica yet
  static constexpr ShardId kMulti = kMultiShard;        ///< replicas listed in multi_

  struct Replica {
    ShardId shard;
    MaxMinSystem::VarId local;
  };
  struct VarRec {
    double weight = 0;
    double bound = kNoBound;
    double detached_value = 0;       ///< allocation while no replica exists
    ShardId shard = kDetached;       ///< owning shard, kMulti, or kDetached
    MaxMinSystem::VarId local = -1;  ///< local id when shard >= 0
    std::int32_t multi = -1;         ///< index into multi_ when shard == kMulti
    bool alive = false;
    bool in_group = false;  ///< scratch: already listed in group_linked_
  };
  struct CnstRec {
    ShardId shard = -1;  ///< < 0: id is free
    MaxMinSystem::CnstId local = -1;
  };

  template <typename Fn>
  void for_each_replica(const VarRec& r, Fn&& fn) const {
    if (r.shard >= 0) {
      fn(Replica{r.shard, r.local});
    } else if (r.shard == kMulti) {
      for (const Replica& rp : multi_[static_cast<size_t>(r.multi)])
        fn(rp);
    }
  }

  void check_var(VarId var, const char* what) const;
  void check_cnst(CnstId cnst, const char* what) const;
  /// Create the variable's replica in `shard` (local var with the shared
  /// weight/bound; kFlagLinked when the variable spans several shards).
  MaxMinSystem::VarId make_replica(VarId var, ShardId shard, bool linked);
  /// Replica of `var` in `shard`, created (and cross-linked) if absent.
  MaxMinSystem::VarId replica_in(VarId var, ShardId shard);

  /// One independent coupled group: shards reachable from each other through
  /// linked replicas (in discovery order), plus the linked logical vars whose
  /// replicas all live inside the group. Groups touch disjoint shard sets,
  /// so solve_group() runs concurrently for different groups.
  struct Group {
    std::vector<ShardId> shards;
    std::vector<VarId> linked;
  };
  /// Joint progressive filling over one group (closures already collected
  /// and committed). Writes only the group's shards; safe to run in
  /// parallel with other groups and with uncoupled shard-local solves.
  void solve_group(Group& gr);

  /// Conservative per-shard dirty mark — every façade mutation that can make
  /// a shard need solving sets its byte. solve() double-checks the shard's
  /// own needs_solve(), so over-marking is harmless; the byte map keeps
  /// needs_solve()/solve() from touching every MaxMinSystem each round.
  /// Distinct bytes are distinct memory locations, so engine lanes marking
  /// their own shards concurrently is race-free.
  void mark_shard(ShardId s) { shard_dirty_[static_cast<size_t>(s)] = 1; }

  std::vector<MaxMinSystem> shards_;
  std::vector<std::vector<VarId>> var_global_;    ///< [shard][local var] -> global id
  std::vector<std::vector<CnstId>> cnst_global_;  ///< [shard][local cnst] -> global id
  /// Live linked replicas per shard. A shard hosting any may only solve the
  /// collected closure, never escalate to a whole-shard solve_full(): the
  /// escalation would recompute linked replicas the closure never reached —
  /// locally, without their sibling shards — and their values would diverge.
  std::vector<size_t> shard_linked_;

  std::vector<VarRec> vars_;
  std::vector<VarId> free_var_ids_;
  std::vector<CnstRec> cnsts_;
  std::vector<CnstId> free_cnst_ids_;
  std::vector<std::vector<Replica>> multi_;  ///< replica lists of cross-shard vars
  std::vector<std::int32_t> free_multi_;
  size_t live_vars_ = 0;
  size_t live_cnsts_ = 0;

  std::vector<VarId> detached_dirty_;  ///< detached vars touched since last solve
  std::vector<VarId> changed_vars_;
  size_t group_solves_ = 0;

  // -- per-solve scratch (sized shard_count once) ----------------------------
  static constexpr unsigned char kShardOpen = 1;     ///< closure being collected
  static constexpr unsigned char kShardCoupled = 2;  ///< closure reached a linked replica
  std::vector<ShardId> open_;
  std::vector<ShardId> uncoupled_;          ///< open shards with no linked replica reached
  std::vector<ShardId> coupled_;            ///< open shards whose closure hit a linked replica
  std::vector<size_t> scan_pos_;            ///< per shard: linked-scan cursor
  std::vector<unsigned char> shard_flags_;  ///< per shard: kShardOpen | kShardCoupled
  std::vector<unsigned char> shard_dirty_;  ///< per shard: touched since last solve
  std::vector<VarId> group_linked_;         ///< logical linked vars across all groups
  std::vector<Group> groups_;               ///< pooled group storage, n_groups_ live
  size_t n_groups_ = 0;
  std::vector<ShardId> uf_parent_;          ///< union-find scratch over coupled_
  std::vector<std::int32_t> group_slot_;    ///< per shard: root -> group index
};

}  // namespace sg::core
