#include "core/maxmin.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "core/workers.hpp"
#include "xbt/exception.hpp"

namespace sg::core {

namespace {
constexpr double kEps = 1e-9;
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

// ---------------------------------------------------------------------------
// Element arena
// ---------------------------------------------------------------------------

std::int32_t MaxMinSystem::alloc_node() {
  std::int32_t n;
  if (free_nodes_ != kNoNode) {
    n = free_nodes_;
    free_nodes_ = node(n).next;
  } else {
    if (static_cast<size_t>(arena_size_) == chunks_.size() * kChunkNodes)
      chunks_.push_back(std::make_unique<ElemNode[]>(kChunkNodes));
    n = arena_size_++;
  }
  ++nodes_in_use_;
  ElemNode& nd = node(n);
  nd.count = 0;
  nd.next = kNoNode;
  return n;
}

void MaxMinSystem::free_node(std::int32_t n) {
  node(n).next = free_nodes_;
  free_nodes_ = n;
  --nodes_in_use_;
}

void MaxMinSystem::list_insert(std::int32_t& head, std::int32_t peer, double coeff) {
  if (head == kNoNode || node(head).count == kNodeEntries) {
    // Prepend a fresh node (order within a list is irrelevant to the math).
    const std::int32_t n = alloc_node();
    ElemNode& nd = node(n);
    nd.next = head;
    nd.count = 1;
    nd.id[0] = peer;
    nd.coeff[0] = coeff;
    head = n;
    return;
  }
  ElemNode& nd = node(head);
  nd.id[nd.count] = peer;
  nd.coeff[nd.count] = coeff;
  ++nd.count;
}

std::int32_t MaxMinSystem::list_remove_all(std::int32_t& head, std::int32_t peer) {
  std::int32_t removed = 0;
  std::int32_t* link = &head;
  while (*link != kNoNode) {
    ElemNode& nd = node(*link);
    for (std::int32_t k = 0; k < nd.count;) {
      if (nd.id[k] == peer) {
        // Node-local swap-remove: other nodes stay untouched.
        --nd.count;
        nd.id[k] = nd.id[nd.count];
        nd.coeff[k] = nd.coeff[nd.count];
        ++removed;
      } else {
        ++k;
      }
    }
    if (nd.count == 0) {
      const std::int32_t dead = *link;
      *link = nd.next;
      free_node(dead);
    } else {
      link = &nd.next;
    }
  }
  return removed;
}

void MaxMinSystem::list_free(std::int32_t& head) {
  while (head != kNoNode) {
    const std::int32_t n = head;
    head = node(n).next;
    free_node(n);
  }
}

// ---------------------------------------------------------------------------
// Id management and mutations
// ---------------------------------------------------------------------------

void MaxMinSystem::check_var(VarId var, const char* what) const {
  if (var < 0 || static_cast<size_t>(var) >= var_weight_.size())
    throw xbt::InvalidArgument(std::string(what) + ": variable id " + std::to_string(var) +
                               " out of range");
}

void MaxMinSystem::check_cnst(CnstId cnst, const char* what) const {
  if (cnst < 0 || static_cast<size_t>(cnst) >= cnst_core_.size())
    throw xbt::InvalidArgument(std::string(what) + ": constraint id " + std::to_string(cnst) +
                               " out of range");
}

void MaxMinSystem::mark_var_dirty(VarId var) {
  if (full_solve_pending_ || (var_flags_[static_cast<size_t>(var)] & kFlagDirty))
    return;
  var_flags_[static_cast<size_t>(var)] |= kFlagDirty;
  dirty_vars_.push_back(var);
}

void MaxMinSystem::mark_cnst_dirty(CnstId cnst, bool need_traverse) {
  if (full_solve_pending_)
    return;
  unsigned char& flags = cnst_flags_[static_cast<size_t>(cnst)];
  // Shared constraints couple their users, so any change propagates to all of
  // them. A fatpipe caps each user independently: only a capacity change
  // (need_traverse) concerns users other than the (separately dirtied)
  // variable being added/removed.
  need_traverse = need_traverse || (flags & kFlagShared);
  if (flags & kFlagDirty) {
    if (need_traverse)
      flags |= kFlagTraverse;
    return;
  }
  flags |= kFlagDirty;
  if (need_traverse)
    flags |= kFlagTraverse;
  else
    flags &= static_cast<unsigned char>(~kFlagTraverse);
  dirty_cnsts_.push_back(cnst);
}

MaxMinSystem::CnstId MaxMinSystem::new_constraint(double capacity, bool shared) {
  if (capacity < 0)
    throw xbt::InvalidArgument("constraint capacity must be non-negative");
  CnstId id;
  if (!free_cnsts_.empty()) {
    id = free_cnsts_.back();
    free_cnsts_.pop_back();
    const size_t i = static_cast<size_t>(id);
    // release_constraint already freed the element list and zeroed the
    // degree; keep the dirty bit as-is (a pending seed is merely harmless).
    cnst_core_[i].capacity = capacity;
    cnst_flags_[i] |= kFlagAlive;
    if (shared)
      cnst_flags_[i] |= kFlagShared;
    else
      cnst_flags_[i] &= static_cast<unsigned char>(~kFlagShared);
  } else {
    id = static_cast<CnstId>(cnst_core_.size());
    cnst_core_.push_back({capacity, kNoNode, 0});
    cnst_flags_.push_back(static_cast<unsigned char>(kFlagAlive | (shared ? kFlagShared : 0)));
    remaining_.push_back(0);
  }
  ++live_cnsts_;
  return id;
}

void MaxMinSystem::release_constraint(CnstId cnst) {
  check_cnst(cnst, "release_constraint");
  const size_t i = static_cast<size_t>(cnst);
  if (!(cnst_flags_[i] & kFlagAlive))
    return;
  cnst_flags_[i] &= static_cast<unsigned char>(~kFlagAlive);
  // Every user loses a cap/share: remove the back-references and re-solve
  // the freed variables' components.
  for (std::int32_t n = cnst_core_[i].head; n != kNoNode; n = node(n).next) {
    const ElemNode& nd = node(n);
    for (std::int32_t k = 0; k < nd.count; ++k) {
      const VarId v = nd.id[k];
      const std::int32_t removed = list_remove_all(var_link_[static_cast<size_t>(v)].head, cnst);
      if (removed > 0) {  // duplicates were already removed by an earlier pass
        var_link_[static_cast<size_t>(v)].degree -= removed;
        mark_var_dirty(v);
      }
    }
  }
  list_free(cnst_core_[i].head);
  cnst_core_[i].degree = 0;
  free_cnsts_.push_back(cnst);
  --live_cnsts_;
}

MaxMinSystem::VarId MaxMinSystem::new_variable(double weight, double bound) {
  if (weight < 0)
    throw xbt::InvalidArgument("variable weight must be non-negative");
  VarId id;
  if (!free_vars_.empty()) {
    // Recycle in place: the SoA slots and the (just-freed, cache-hot) arena
    // nodes of the released variable are what churn workloads re-use.
    id = free_vars_.back();
    free_vars_.pop_back();
    const size_t i = static_cast<size_t>(id);
    var_weight_[i] = weight;
    var_bound_[i] = bound;
    var_value_[i] = 0;
    var_flags_[i] |= kFlagAlive;
  } else {
    id = static_cast<VarId>(var_weight_.size());
    var_weight_.push_back(weight);
    var_bound_.push_back(bound);
    var_value_.push_back(0);
    var_flags_.push_back(kFlagAlive);
    var_link_.push_back({kNoNode, 0});
    effective_bound_.push_back(kInf);
  }
  ++live_vars_;
  mark_var_dirty(id);
  return id;
}

void MaxMinSystem::expand(CnstId cnst, VarId var, double coeff) {
  if (coeff <= 0)
    throw xbt::InvalidArgument("element coefficient must be positive");
  check_cnst(cnst, "expand");
  check_var(var, "expand");
  if (!(var_flags_[static_cast<size_t>(var)] & kFlagAlive))
    throw xbt::InvalidArgument("expand: variable id " + std::to_string(var) + " was released");
  if (!(cnst_flags_[static_cast<size_t>(cnst)] & kFlagAlive))
    throw xbt::InvalidArgument("expand: constraint id " + std::to_string(cnst) + " was released");
  CnstCore& cc = cnst_core_[static_cast<size_t>(cnst)];
  list_insert(cc.head, var, coeff);
  ++cc.degree;
  VarLink& vl = var_link_[static_cast<size_t>(var)];
  list_insert(vl.head, cnst, coeff);
  ++vl.degree;
  // The constraint's existing users must re-share with the newcomer
  // (membership change: fatpipes stay cap-only).
  mark_cnst_dirty(cnst, /*need_traverse=*/false);
  mark_var_dirty(var);
}

void MaxMinSystem::release_variable(VarId var) {
  check_var(var, "release_variable");
  const size_t i = static_cast<size_t>(var);
  if (!(var_flags_[i] & kFlagAlive))
    return;
  var_flags_[i] &= static_cast<unsigned char>(~kFlagAlive);
  var_value_[i] = 0;
  for (std::int32_t n = var_link_[i].head; n != kNoNode; n = node(n).next) {
    const ElemNode& nd = node(n);
    for (std::int32_t k = 0; k < nd.count; ++k) {
      const CnstId c = nd.id[k];
      // Eager removal: a stale element would silently re-attach to whatever
      // variable later recycles this id. The constraint is re-solved anyway
      // (it is dirty), so the scan does not change the asymptotic cost.
      const std::int32_t removed = list_remove_all(cnst_core_[static_cast<size_t>(c)].head, var);
      if (removed > 0) {
        cnst_core_[static_cast<size_t>(c)].degree -= removed;
        // The freed share must be redistributed among the constraint's users
        // (membership change: fatpipes stay cap-only).
        mark_cnst_dirty(c, /*need_traverse=*/false);
      }
    }
  }
  list_free(var_link_[i].head);
  var_link_[i].degree = 0;
  free_vars_.push_back(var);
  --live_vars_;
}

void MaxMinSystem::set_capacity(CnstId cnst, double capacity) {
  if (capacity < 0)
    throw xbt::InvalidArgument("constraint capacity must be non-negative");
  check_cnst(cnst, "set_capacity");
  CnstCore& cc = cnst_core_[static_cast<size_t>(cnst)];
  if (cc.capacity == capacity)
    return;
  cc.capacity = capacity;
  // A capacity change moves every user's cap, so fatpipes traverse too.
  mark_cnst_dirty(cnst, /*need_traverse=*/true);
}

double MaxMinSystem::capacity(CnstId cnst) const {
  check_cnst(cnst, "capacity");
  return cnst_core_[static_cast<size_t>(cnst)].capacity;
}

void MaxMinSystem::set_weight(VarId var, double weight) {
  if (weight < 0)
    throw xbt::InvalidArgument("variable weight must be non-negative");
  if (var_weight_.at(static_cast<size_t>(var)) == weight)
    return;
  var_weight_[static_cast<size_t>(var)] = weight;
  if (var_flags_[static_cast<size_t>(var)] & kFlagAlive)
    mark_var_dirty(var);
}

double MaxMinSystem::weight(VarId var) const { return var_weight_.at(static_cast<size_t>(var)); }

void MaxMinSystem::set_bound(VarId var, double bound) {
  if (var_bound_.at(static_cast<size_t>(var)) == bound)
    return;
  var_bound_[static_cast<size_t>(var)] = bound;
  if (var_flags_[static_cast<size_t>(var)] & kFlagAlive)
    mark_var_dirty(var);
}

double MaxMinSystem::bound(VarId var) const { return var_bound_.at(static_cast<size_t>(var)); }

double MaxMinSystem::value(VarId var) const { return var_value_.at(static_cast<size_t>(var)); }

double MaxMinSystem::usage(CnstId cnst) const {
  check_cnst(cnst, "usage");
  const bool shared = (cnst_flags_[static_cast<size_t>(cnst)] & kFlagShared) != 0;
  double total = 0;
  for (std::int32_t n = cnst_core_[static_cast<size_t>(cnst)].head; n != kNoNode; n = node(n).next) {
    const ElemNode& nd = node(n);
    for (std::int32_t k = 0; k < nd.count; ++k) {
      const double u = nd.coeff[k] * var_value_[static_cast<size_t>(nd.id[k])];
      total = shared ? total + u : std::max(total, u);
    }
  }
  return total;
}

size_t MaxMinSystem::constraint_degree(CnstId cnst) const {
  check_cnst(cnst, "constraint_degree");
  return static_cast<size_t>(cnst_core_[static_cast<size_t>(cnst)].degree);
}

size_t MaxMinSystem::variable_degree(VarId var) const {
  check_var(var, "variable_degree");
  return static_cast<size_t>(var_link_[static_cast<size_t>(var)].degree);
}

MaxMinSystem::MemoryStats MaxMinSystem::memory_stats() const {
  MemoryStats m;
  m.live_variables = live_vars_;
  m.live_constraints = live_cnsts_;
  m.arena_nodes_in_use = nodes_in_use_;
  m.arena_nodes_allocated = static_cast<size_t>(arena_size_);
  m.arena_bytes = chunks_.size() * kChunkNodes * sizeof(ElemNode);
  auto cap_bytes = [](const auto& v) { return v.capacity() * sizeof(v[0]); };
  m.soa_bytes = cap_bytes(cnst_core_) + cap_bytes(cnst_flags_) + cap_bytes(free_cnsts_) +
                cap_bytes(var_weight_) + cap_bytes(var_bound_) + cap_bytes(var_value_) +
                cap_bytes(var_flags_) + cap_bytes(var_link_) + cap_bytes(free_vars_) +
                cap_bytes(effective_bound_) + cap_bytes(remaining_);
  return m;
}

// ---------------------------------------------------------------------------
// Solving
// ---------------------------------------------------------------------------

void MaxMinSystem::closure_add_var(VarId v) {
  unsigned char& flags = var_flags_[static_cast<size_t>(v)];
  if (!(flags & kFlagInSet) && (flags & kFlagAlive)) {
    flags |= kFlagInSet;
    affected_vars_.push_back(v);
  }
}

void MaxMinSystem::closure_add_cnst(CnstId c, bool traverse) {
  unsigned char& flags = cnst_flags_[static_cast<size_t>(c)];
  if (!(flags & kFlagAlive))
    return;
  if (!(flags & kFlagInSet)) {
    flags |= kFlagInSet;
    affected_cnsts_.push_back(c);
  }
  // During a closure epoch kFlagTraverse marks "users queued": a cap-only
  // fatpipe inclusion can be upgraded later (e.g. a capacity-dirty seed in a
  // second collect round) and its users are then reached exactly once.
  if (traverse && !(flags & kFlagTraverse)) {
    flags |= kFlagTraverse;
    traverse_list_.push_back(c);
  }
}

void MaxMinSystem::closure_collect() {
  if (!closure_open_) {
    affected_vars_.clear();
    affected_cnsts_.clear();
    traverse_list_.clear();
    closure_vi_ = 0;
    closure_ti_ = 0;
    closure_was_full_ = false;
    closure_open_ = true;
  }
  if (full_solve_pending_) {
    // First solve of this (sub)system: everything is affected, and no
    // traversal is needed since nothing can be missing.
    for (size_t i = 0; i < var_flags_.size(); ++i)
      if (var_flags_[i] & kFlagAlive)
        closure_add_var(static_cast<VarId>(i));
    for (size_t c = 0; c < cnst_flags_.size(); ++c)
      closure_add_cnst(static_cast<CnstId>(c), /*traverse=*/false);
    for (VarId v : dirty_vars_)
      var_flags_[static_cast<size_t>(v)] &= static_cast<unsigned char>(~kFlagDirty);
    dirty_vars_.clear();
    for (CnstId c : dirty_cnsts_)
      cnst_flags_[static_cast<size_t>(c)] &= static_cast<unsigned char>(~(kFlagDirty | kFlagTraverse));
    dirty_cnsts_.clear();
    full_solve_pending_ = false;
    closure_was_full_ = true;
    closure_vi_ = affected_vars_.size();
    closure_ti_ = traverse_list_.size();
    return;
  }

  // Transitive closure of the dirty seeds over the variable-constraint graph:
  // the union of the connected components whose allocation can have changed.
  // Fatpipe constraints cap each user individually and do not couple them, so
  // they do not propagate the closure var -> fatpipe -> other vars: they are
  // included cap-only (traversed only when capacity-dirty themselves). This
  // keeps a shared backbone fatpipe from merging every flow into one
  // component. A membership-dirty fatpipe stays cap-only — adding/removing
  // one user does not move the others' caps.
  for (CnstId c : dirty_cnsts_) {
    unsigned char& flags = cnst_flags_[static_cast<size_t>(c)];
    const bool traverse = (flags & kFlagTraverse) != 0;
    flags &= static_cast<unsigned char>(~(kFlagDirty | kFlagTraverse));
    closure_add_cnst(c, traverse);
  }
  dirty_cnsts_.clear();
  for (VarId v : dirty_vars_) {
    var_flags_[static_cast<size_t>(v)] &= static_cast<unsigned char>(~kFlagDirty);
    closure_add_var(v);
  }
  dirty_vars_.clear();

  // Worklist to exhaustion. The cursors persist across collect calls, so a
  // later round (sharded group formation seeds sibling replicas) resumes
  // where this one stopped instead of rescanning the whole closure.
  while (closure_vi_ < affected_vars_.size() || closure_ti_ < traverse_list_.size()) {
    if (closure_vi_ < affected_vars_.size()) {
      const VarId v = affected_vars_[closure_vi_++];
      for_each_constraint_of(v, [&](CnstId c, double) {
        closure_add_cnst(c, (cnst_flags_[static_cast<size_t>(c)] & kFlagShared) != 0);
      });
    } else {
      const CnstId c = traverse_list_[closure_ti_++];
      for_each_variable_on(c, [&](VarId v, double) { closure_add_var(v); });
    }
  }
}

void MaxMinSystem::closure_commit() {
  for (VarId v : affected_vars_)
    var_flags_[static_cast<size_t>(v)] &= static_cast<unsigned char>(~kFlagInSet);
  for (CnstId c : affected_cnsts_)
    cnst_flags_[static_cast<size_t>(c)] &= static_cast<unsigned char>(~(kFlagInSet | kFlagTraverse));
  closure_open_ = false;
}

void MaxMinSystem::solve() {
  if (full_solve_pending_) {
    solve_full();
    return;
  }
  if (dirty_vars_.empty() && dirty_cnsts_.empty()) {
    changed_vars_.clear();
    return;
  }

  closure_collect();
  closure_commit();

  if (affected_vars_.size() * 2 > live_vars_ && full_solve_profitable()) {
    solve_full();
    return;
  }
  solve_subset(affected_vars_, affected_cnsts_);
}

bool MaxMinSystem::full_solve_profitable() const {
  // solve_full() rebuilds the affected sets by sweeping the whole id arena,
  // alive or recycled. When most slots are recycled — a churned or drained
  // system holding a handful of live variables in a once-large arena — that
  // sweep is O(capacity), and escalating would turn an O(affected) event
  // into an O(platform) one. Escalate only when the sweep is comparable to
  // the closure already collected.
  return var_flags_.size() + cnst_flags_.size() <=
         8 * (affected_vars_.size() + affected_cnsts_.size());
}

void MaxMinSystem::solve_full() {
  affected_vars_.clear();
  affected_cnsts_.clear();
  for (size_t i = 0; i < var_flags_.size(); ++i)
    if (var_flags_[i] & kFlagAlive)
      affected_vars_.push_back(static_cast<VarId>(i));
  for (size_t c = 0; c < cnst_flags_.size(); ++c)
    if (cnst_flags_[c] & kFlagAlive)
      affected_cnsts_.push_back(static_cast<CnstId>(c));

  for (VarId v : dirty_vars_)
    var_flags_[static_cast<size_t>(v)] &= static_cast<unsigned char>(~kFlagDirty);
  dirty_vars_.clear();
  for (CnstId c : dirty_cnsts_)
    cnst_flags_[static_cast<size_t>(c)] &= static_cast<unsigned char>(~(kFlagDirty | kFlagTraverse));
  dirty_cnsts_.clear();
  full_solve_pending_ = false;

  ++stats_.full_solves;
  solve_subset(affected_vars_, affected_cnsts_);
}

void MaxMinSystem::solve_subset(const std::vector<VarId>& svars, const std::vector<CnstId>& scnsts) {
  ++stats_.solves;
  stats_.vars_visited += svars.size();

  // Working state, persistent across solves. The active bit — still growing
  // (all clear between solves). `effective_bound_[i]` folds the variable's
  // own bound together with its fatpipe caps. All hot fields are SoA arrays,
  // so these loops touch exactly the cache lines of the subset's ids.
  size_t n_active = 0;
  old_values_.resize(svars.size());
  for (size_t k = 0; k < svars.size(); ++k) {
    const size_t i = static_cast<size_t>(svars[k]);
    old_values_[k] = var_value_[i];
    var_value_[i] = 0;
    effective_bound_[i] = kInf;
    if (var_weight_[i] <= 0)
      continue;
    var_flags_[i] |= kFlagActive;
    ++n_active;
    if (var_bound_[i] >= 0)
      effective_bound_[i] = var_bound_[i];
  }

  // Fatpipe constraints translate to per-variable caps: cap / coeff.
  for (CnstId cid : scnsts) {
    const size_t c = static_cast<size_t>(cid);
    remaining_[c] = cnst_core_[c].capacity;
    if (cnst_flags_[c] & kFlagShared)
      continue;
    for (std::int32_t n = cnst_core_[c].head; n != kNoNode; n = node(n).next) {
      const ElemNode& nd = node(n);
      for (std::int32_t k = 0; k < nd.count; ++k) {
        const size_t i = static_cast<size_t>(nd.id[k]);
        if (var_flags_[i] & kFlagActive)
          effective_bound_[i] = std::min(effective_bound_[i], cnst_core_[c].capacity / nd.coeff[k]);
      }
    }
  }

  while (n_active > 0) {
    // Growth room before the tightest shared constraint saturates.
    double delta = kInf;
    for (CnstId cid : scnsts) {
      const size_t c = static_cast<size_t>(cid);
      if (!(cnst_flags_[c] & kFlagShared))
        continue;
      double denom = 0;
      for (std::int32_t n = cnst_core_[c].head; n != kNoNode; n = node(n).next) {
        const ElemNode& nd = node(n);
        for (std::int32_t k = 0; k < nd.count; ++k) {
          const size_t i = static_cast<size_t>(nd.id[k]);
          if (var_flags_[i] & kFlagActive)
            denom += nd.coeff[k] * var_weight_[i];
        }
      }
      if (denom > 0)
        delta = std::min(delta, std::max(0.0, remaining_[c]) / denom);
    }
    // Growth room before a variable bound is reached.
    for (VarId vid : svars) {
      const size_t i = static_cast<size_t>(vid);
      if ((var_flags_[i] & kFlagActive) && effective_bound_[i] < kInf)
        delta = std::min(delta, std::max(0.0, effective_bound_[i] - var_value_[i]) / var_weight_[i]);
    }

    if (delta == kInf) {
      // Unconstrained variables: give them the "infinite" rate and stop.
      for (VarId vid : svars) {
        const size_t i = static_cast<size_t>(vid);
        if (var_flags_[i] & kFlagActive) {
          var_value_[i] = kUnlimited;
          var_flags_[i] &= static_cast<unsigned char>(~kFlagActive);
        }
      }
      break;
    }

    // Grow everyone, consume capacities.
    for (VarId vid : svars) {
      const size_t i = static_cast<size_t>(vid);
      if (var_flags_[i] & kFlagActive)
        var_value_[i] += delta * var_weight_[i];
    }
    for (CnstId cid : scnsts) {
      const size_t c = static_cast<size_t>(cid);
      if (!(cnst_flags_[c] & kFlagShared))
        continue;
      double used = 0;
      for (std::int32_t n = cnst_core_[c].head; n != kNoNode; n = node(n).next) {
        const ElemNode& nd = node(n);
        for (std::int32_t k = 0; k < nd.count; ++k) {
          const size_t i = static_cast<size_t>(nd.id[k]);
          if (var_flags_[i] & kFlagActive)
            used += nd.coeff[k] * var_weight_[i];
        }
      }
      remaining_[c] -= delta * used;
    }

    // Freeze variables on saturated shared constraints.
    size_t frozen = 0;
    for (CnstId cid : scnsts) {
      const size_t c = static_cast<size_t>(cid);
      if (!(cnst_flags_[c] & kFlagShared))
        continue;
      bool involved = false;
      for (std::int32_t n = cnst_core_[c].head; n != kNoNode && !involved; n = node(n).next) {
        const ElemNode& nd = node(n);
        for (std::int32_t k = 0; k < nd.count; ++k)
          if (var_flags_[static_cast<size_t>(nd.id[k])] & kFlagActive) {
            involved = true;
            break;
          }
      }
      if (!involved)
        continue;
      if (remaining_[c] <= kEps * std::max(1.0, cnst_core_[c].capacity)) {
        for (std::int32_t n = cnst_core_[c].head; n != kNoNode; n = node(n).next) {
          const ElemNode& nd = node(n);
          for (std::int32_t k = 0; k < nd.count; ++k) {
            const size_t i = static_cast<size_t>(nd.id[k]);
            if (var_flags_[i] & kFlagActive) {
              var_flags_[i] &= static_cast<unsigned char>(~kFlagActive);
              ++frozen;
            }
          }
        }
      }
    }
    // Freeze variables that reached their (effective) bound.
    for (VarId vid : svars) {
      const size_t i = static_cast<size_t>(vid);
      if ((var_flags_[i] & kFlagActive) && effective_bound_[i] < kInf &&
          var_value_[i] >= effective_bound_[i] - kEps * std::max(1.0, effective_bound_[i])) {
        var_value_[i] = effective_bound_[i];
        var_flags_[i] &= static_cast<unsigned char>(~kFlagActive);
        ++frozen;
      }
    }

    if (frozen == 0) {
      // delta chosen as an exact saturation point must freeze someone;
      // if numerical dust prevented it, force-freeze the tightest variable
      // to guarantee termination.
      for (VarId vid : svars) {
        const size_t i = static_cast<size_t>(vid);
        if (var_flags_[i] & kFlagActive) {
          var_flags_[i] &= static_cast<unsigned char>(~kFlagActive);
          ++frozen;
          break;
        }
      }
    }
    n_active -= frozen;
  }

  changed_vars_.clear();
  for (size_t k = 0; k < svars.size(); ++k)
    if (var_value_[static_cast<size_t>(svars[k])] != old_values_[k])
      changed_vars_.push_back(svars[k]);
}

// ---------------------------------------------------------------------------
// ShardedMaxMin — id mapping and mutations
// ---------------------------------------------------------------------------

ShardedMaxMin::ShardedMaxMin(int shard_count) { init_shards(shard_count); }

void ShardedMaxMin::init_shards(int shard_count) {
  if (shard_count < 1)
    throw xbt::InvalidArgument("init_shards: shard count must be >= 1");
  if (live_vars_ > 0 || live_cnsts_ > 0)
    throw xbt::InvalidArgument("init_shards: system is not empty");
  shards_ = std::vector<MaxMinSystem>(static_cast<size_t>(shard_count));
  var_global_.assign(static_cast<size_t>(shard_count), {});
  cnst_global_.assign(static_cast<size_t>(shard_count), {});
  shard_linked_.assign(static_cast<size_t>(shard_count), 0);
  scan_pos_.assign(static_cast<size_t>(shard_count), 0);
  shard_flags_.assign(static_cast<size_t>(shard_count), 0);
  shard_dirty_.assign(static_cast<size_t>(shard_count), 0);
  uf_parent_.assign(static_cast<size_t>(shard_count), 0);
  group_slot_.assign(static_cast<size_t>(shard_count), -1);
  groups_.clear();
  n_groups_ = 0;
}

void ShardedMaxMin::check_var(VarId var, const char* what) const {
  if (var < 0 || static_cast<size_t>(var) >= vars_.size())
    throw xbt::InvalidArgument(std::string(what) + ": variable id " + std::to_string(var) +
                               " out of range");
}

void ShardedMaxMin::check_cnst(CnstId cnst, const char* what) const {
  if (cnst < 0 || static_cast<size_t>(cnst) >= cnsts_.size())
    throw xbt::InvalidArgument(std::string(what) + ": constraint id " + std::to_string(cnst) +
                               " out of range");
}

ShardedMaxMin::CnstId ShardedMaxMin::new_constraint_in(ShardId shard, double capacity, bool shared) {
  if (shard < 0 || static_cast<size_t>(shard) >= shards_.size())
    throw xbt::InvalidArgument("new_constraint_in: shard " + std::to_string(shard) + " out of range");
  const MaxMinSystem::CnstId local = shards_[static_cast<size_t>(shard)].new_constraint(capacity, shared);
  mark_shard(shard);
  CnstId g;
  if (!free_cnst_ids_.empty()) {
    g = free_cnst_ids_.back();
    free_cnst_ids_.pop_back();
  } else {
    g = static_cast<CnstId>(cnsts_.size());
    cnsts_.push_back({});
  }
  cnsts_[static_cast<size_t>(g)] = CnstRec{shard, local};
  auto& rev = cnst_global_[static_cast<size_t>(shard)];
  if (rev.size() <= static_cast<size_t>(local))
    rev.resize(static_cast<size_t>(local) + 1, -1);
  rev[static_cast<size_t>(local)] = g;
  ++live_cnsts_;
  return g;
}

void ShardedMaxMin::release_constraint(CnstId cnst) {
  check_cnst(cnst, "release_constraint");
  CnstRec& c = cnsts_[static_cast<size_t>(cnst)];
  if (c.shard < 0)
    return;
  shards_[static_cast<size_t>(c.shard)].release_constraint(c.local);
  cnst_global_[static_cast<size_t>(c.shard)][static_cast<size_t>(c.local)] = -1;
  mark_shard(c.shard);
  c.shard = -1;
  free_cnst_ids_.push_back(cnst);
  --live_cnsts_;
}

ShardedMaxMin::ShardId ShardedMaxMin::shard_of_constraint(CnstId cnst) const {
  check_cnst(cnst, "shard_of_constraint");
  return cnsts_[static_cast<size_t>(cnst)].shard;
}

ShardedMaxMin::VarId ShardedMaxMin::new_variable(double weight, double bound) {
  if (weight < 0)
    throw xbt::InvalidArgument("variable weight must be non-negative");
  VarId g;
  if (!free_var_ids_.empty()) {
    g = free_var_ids_.back();
    free_var_ids_.pop_back();
  } else {
    g = static_cast<VarId>(vars_.size());
    vars_.push_back({});
  }
  VarRec& r = vars_[static_cast<size_t>(g)];
  r = VarRec{};
  r.weight = weight;
  r.bound = bound;
  r.alive = true;
  detached_dirty_.push_back(g);
  ++live_vars_;
  return g;
}

MaxMinSystem::VarId ShardedMaxMin::make_replica(VarId var, ShardId shard, bool linked) {
  const VarRec& r = vars_[static_cast<size_t>(var)];
  MaxMinSystem& m = shards_[static_cast<size_t>(shard)];
  const MaxMinSystem::VarId lv = m.new_variable(r.weight, r.bound);
  mark_shard(shard);
  if (linked) {
    m.var_flags_[static_cast<size_t>(lv)] |= MaxMinSystem::kFlagLinked;
    ++shard_linked_[static_cast<size_t>(shard)];
  }
  auto& rev = var_global_[static_cast<size_t>(shard)];
  if (rev.size() <= static_cast<size_t>(lv))
    rev.resize(static_cast<size_t>(lv) + 1, -1);
  rev[static_cast<size_t>(lv)] = var;
  return lv;
}

MaxMinSystem::VarId ShardedMaxMin::replica_in(VarId var, ShardId shard) {
  VarRec& r = vars_[static_cast<size_t>(var)];
  if (r.shard == shard)
    return r.local;
  if (r.shard == kDetached) {
    r.local = make_replica(var, shard, /*linked=*/false);
    r.shard = shard;
    return r.local;
  }
  if (r.shard >= 0) {
    // Second shard: the variable becomes cross-shard. Flag the existing
    // replica and move both into a replica list; from now on every solve
    // whose closure reaches one of them must co-solve the others.
    shards_[static_cast<size_t>(r.shard)].var_flags_[static_cast<size_t>(r.local)] |=
        MaxMinSystem::kFlagLinked;
    ++shard_linked_[static_cast<size_t>(r.shard)];
    std::int32_t mi;
    if (!free_multi_.empty()) {
      mi = free_multi_.back();
      free_multi_.pop_back();
      multi_[static_cast<size_t>(mi)].clear();
    } else {
      mi = static_cast<std::int32_t>(multi_.size());
      multi_.emplace_back();
    }
    auto& list = multi_[static_cast<size_t>(mi)];
    list.push_back(Replica{r.shard, r.local});
    const MaxMinSystem::VarId lv = make_replica(var, shard, /*linked=*/true);
    list.push_back(Replica{shard, lv});
    r.shard = kMulti;
    r.multi = mi;
    return lv;
  }
  auto& list = multi_[static_cast<size_t>(r.multi)];
  for (const Replica& rp : list)
    if (rp.shard == shard)
      return rp.local;
  const MaxMinSystem::VarId lv = make_replica(var, shard, /*linked=*/true);
  list.push_back(Replica{shard, lv});
  return lv;
}

void ShardedMaxMin::expand(CnstId cnst, VarId var, double coeff) {
  check_cnst(cnst, "expand");
  check_var(var, "expand");
  const CnstRec& c = cnsts_[static_cast<size_t>(cnst)];
  if (c.shard < 0)
    throw xbt::InvalidArgument("expand: constraint id " + std::to_string(cnst) + " was released");
  if (!vars_[static_cast<size_t>(var)].alive)
    throw xbt::InvalidArgument("expand: variable id " + std::to_string(var) + " was released");
  const MaxMinSystem::VarId lv = replica_in(var, c.shard);
  shards_[static_cast<size_t>(c.shard)].expand(c.local, lv, coeff);
  mark_shard(c.shard);
}

void ShardedMaxMin::release_variable(VarId var) {
  check_var(var, "release_variable");
  VarRec& r = vars_[static_cast<size_t>(var)];
  if (!r.alive)
    return;
  for_each_replica(r, [&](Replica rp) {
    shards_[static_cast<size_t>(rp.shard)].release_variable(rp.local);
    var_global_[static_cast<size_t>(rp.shard)][static_cast<size_t>(rp.local)] = -1;
    mark_shard(rp.shard);
    if (r.shard == kMulti)
      --shard_linked_[static_cast<size_t>(rp.shard)];
  });
  if (r.shard == kMulti)
    free_multi_.push_back(r.multi);
  r.alive = false;
  r.shard = kDetached;
  r.local = -1;
  r.multi = -1;
  r.detached_value = 0;
  free_var_ids_.push_back(var);
  --live_vars_;
}

void ShardedMaxMin::release_variable_local(VarId var) {
  check_var(var, "release_variable_local");
  VarRec& r = vars_[static_cast<size_t>(var)];
  if (!r.alive)
    return;
  if (r.shard == kMulti)
    throw xbt::InvalidArgument("release_variable_local: variable id " + std::to_string(var) +
                               " spans several shards");
  if (r.shard >= 0) {
    shards_[static_cast<size_t>(r.shard)].release_variable(r.local);
    var_global_[static_cast<size_t>(r.shard)][static_cast<size_t>(r.local)] = -1;
    mark_shard(r.shard);
  }
  r.alive = false;
  r.shard = kDetached;
  r.local = -1;
  r.multi = -1;
  r.detached_value = 0;
  // The global id is NOT recycled here: concurrent lanes would race on
  // free_var_ids_, and the reuse order would depend on lane timing. The
  // engine hands the ids to commit_released() in fixed shard order instead.
}

void ShardedMaxMin::commit_released(const VarId* ids, size_t count) {
  free_var_ids_.insert(free_var_ids_.end(), ids, ids + count);
  live_vars_ -= count;
}

void ShardedMaxMin::set_capacity(CnstId cnst, double capacity) {
  check_cnst(cnst, "set_capacity");
  const CnstRec& c = cnsts_[static_cast<size_t>(cnst)];
  if (c.shard < 0)
    throw xbt::InvalidArgument("set_capacity: constraint id " + std::to_string(cnst) + " was released");
  shards_[static_cast<size_t>(c.shard)].set_capacity(c.local, capacity);
  mark_shard(c.shard);
}

double ShardedMaxMin::capacity(CnstId cnst) const {
  check_cnst(cnst, "capacity");
  const CnstRec& c = cnsts_[static_cast<size_t>(cnst)];
  if (c.shard < 0)
    throw xbt::InvalidArgument("capacity: constraint id " + std::to_string(cnst) + " was released");
  return shards_[static_cast<size_t>(c.shard)].capacity(c.local);
}

void ShardedMaxMin::set_weight(VarId var, double weight) {
  if (weight < 0)
    throw xbt::InvalidArgument("variable weight must be non-negative");
  check_var(var, "set_weight");
  VarRec& r = vars_[static_cast<size_t>(var)];
  if (r.weight == weight)
    return;
  r.weight = weight;
  if (r.shard == kDetached) {
    if (r.alive)
      detached_dirty_.push_back(var);
    return;
  }
  for_each_replica(r, [&](Replica rp) {
    shards_[static_cast<size_t>(rp.shard)].set_weight(rp.local, weight);
    mark_shard(rp.shard);
  });
}

double ShardedMaxMin::weight(VarId var) const {
  check_var(var, "weight");
  return vars_[static_cast<size_t>(var)].weight;
}

void ShardedMaxMin::set_bound(VarId var, double bound) {
  check_var(var, "set_bound");
  VarRec& r = vars_[static_cast<size_t>(var)];
  if (r.bound == bound)
    return;
  r.bound = bound;
  if (r.shard == kDetached) {
    if (r.alive)
      detached_dirty_.push_back(var);
    return;
  }
  for_each_replica(r, [&](Replica rp) {
    shards_[static_cast<size_t>(rp.shard)].set_bound(rp.local, bound);
    mark_shard(rp.shard);
  });
}

double ShardedMaxMin::bound(VarId var) const {
  check_var(var, "bound");
  return vars_[static_cast<size_t>(var)].bound;
}

double ShardedMaxMin::value(VarId var) const {
  check_var(var, "value");
  const VarRec& r = vars_[static_cast<size_t>(var)];
  if (r.shard >= 0)
    return shards_[static_cast<size_t>(r.shard)].value(r.local);
  if (r.shard == kMulti) {
    const Replica& head = multi_[static_cast<size_t>(r.multi)][0];
    return shards_[static_cast<size_t>(head.shard)].value(head.local);
  }
  return r.detached_value;
}

double ShardedMaxMin::usage(CnstId cnst) const {
  check_cnst(cnst, "usage");
  const CnstRec& c = cnsts_[static_cast<size_t>(cnst)];
  if (c.shard < 0)
    throw xbt::InvalidArgument("usage: constraint id " + std::to_string(cnst) + " was released");
  return shards_[static_cast<size_t>(c.shard)].usage(c.local);
}

size_t ShardedMaxMin::constraint_degree(CnstId cnst) const {
  check_cnst(cnst, "constraint_degree");
  const CnstRec& c = cnsts_[static_cast<size_t>(cnst)];
  if (c.shard < 0)
    throw xbt::InvalidArgument("constraint_degree: constraint id " + std::to_string(cnst) +
                               " was released");
  return shards_[static_cast<size_t>(c.shard)].constraint_degree(c.local);
}

size_t ShardedMaxMin::variable_degree(VarId var) const {
  check_var(var, "variable_degree");
  size_t degree = 0;
  for_each_replica(vars_[static_cast<size_t>(var)], [&](Replica rp) {
    degree += shards_[static_cast<size_t>(rp.shard)].variable_degree(rp.local);
  });
  return degree;
}

int ShardedMaxMin::variable_shard_span(VarId var) const {
  check_var(var, "variable_shard_span");
  const VarRec& r = vars_[static_cast<size_t>(var)];
  if (r.shard >= 0)
    return 1;
  if (r.shard == kMulti)
    return static_cast<int>(multi_[static_cast<size_t>(r.multi)].size());
  return 0;
}

bool ShardedMaxMin::needs_solve() const {
  if (!detached_dirty_.empty())
    return true;
  // shard_dirty_ is a conservative superset of the shards whose own
  // needs_solve() can be true, so quiet shards cost one byte load here.
  for (size_t s = 0; s < shards_.size(); ++s)
    if (shard_dirty_[s] && shards_[s].needs_solve())
      return true;
  return false;
}

MaxMinSystem::SolveStats ShardedMaxMin::solve_stats() const {
  MaxMinSystem::SolveStats total;
  for (const MaxMinSystem& m : shards_) {
    total.solves += m.stats_.solves;
    total.full_solves += m.stats_.full_solves;
    total.vars_visited += m.stats_.vars_visited;
  }
  return total;
}

MaxMinSystem::MemoryStats ShardedMaxMin::memory_stats() const {
  MaxMinSystem::MemoryStats total;
  for (const MaxMinSystem& m : shards_) {
    const MaxMinSystem::MemoryStats s = m.memory_stats();
    total.arena_nodes_in_use += s.arena_nodes_in_use;
    total.arena_nodes_allocated += s.arena_nodes_allocated;
    total.arena_bytes += s.arena_bytes;
    total.soa_bytes += s.soa_bytes;
  }
  total.live_variables = live_vars_;
  total.live_constraints = live_cnsts_;
  auto cap_bytes = [](const auto& v) { return v.capacity() * sizeof(v[0]); };
  total.soa_bytes += cap_bytes(vars_) + cap_bytes(cnsts_) + cap_bytes(free_var_ids_) +
                     cap_bytes(free_cnst_ids_) + cap_bytes(multi_) + cap_bytes(free_multi_);
  for (const auto& rev : var_global_)
    total.soa_bytes += cap_bytes(rev);
  for (const auto& rev : cnst_global_)
    total.soa_bytes += cap_bytes(rev);
  return total;
}

// ---------------------------------------------------------------------------
// ShardedMaxMin — solving
// ---------------------------------------------------------------------------

void ShardedMaxMin::solve(ShardWorkers* workers, PhaseProbe* probe) {
  changed_vars_.clear();

  // Detached variables: nothing constrains them, so their allocation is the
  // unconstrained rate — no shard needs to know.
  for (VarId g : detached_dirty_) {
    VarRec& r = vars_[static_cast<size_t>(g)];
    if (!r.alive || r.shard != kDetached)
      continue;
    const double nv = r.weight > 0 ? kUnlimited : 0.0;
    if (nv != r.detached_value) {
      r.detached_value = nv;
      changed_vars_.push_back(g);
    }
  }
  detached_dirty_.clear();

  open_.clear();
  const ShardId n = static_cast<ShardId>(shards_.size());
  auto open_shard = [&](ShardId s) {
    if (shard_flags_[static_cast<size_t>(s)] & kShardOpen)
      return;
    shard_flags_[static_cast<size_t>(s)] |= kShardOpen;
    scan_pos_[static_cast<size_t>(s)] = 0;
    open_.push_back(s);
  };
  for (ShardId s = 0; s < n; ++s) {
    shard_flags_[static_cast<size_t>(s)] = 0;
    if (!shard_dirty_[static_cast<size_t>(s)])
      continue;
    shard_dirty_[static_cast<size_t>(s)] = 0;
    if (shards_[static_cast<size_t>(s)].needs_solve())
      open_shard(s);
  }
  if (open_.empty())
    return;

  // Collect the dirty closures to a cross-shard fixpoint: whenever a closure
  // reaches a linked replica, its siblings are seeded dirty in their shards
  // (joining them to the group) and those shards' closures are re-collected.
  // Shards whose closure reaches no linked replica stay fully local.
  bool progress = true;
  while (progress) {
    progress = false;
    for (size_t oi = 0; oi < open_.size(); ++oi) {  // open_ may grow inside
      const ShardId s = open_[oi];
      MaxMinSystem& m = shards_[static_cast<size_t>(s)];
      if (!m.closure_pending())
        continue;
      m.closure_collect();
      progress = true;
      size_t& pos = scan_pos_[static_cast<size_t>(s)];
      for (; pos < m.affected_vars_.size(); ++pos) {
        const MaxMinSystem::VarId lv = m.affected_vars_[pos];
        if (!(m.var_flags_[static_cast<size_t>(lv)] & MaxMinSystem::kFlagLinked))
          continue;
        shard_flags_[static_cast<size_t>(s)] |= kShardCoupled;
        const VarId g = var_global_[static_cast<size_t>(s)][static_cast<size_t>(lv)];
        VarRec& r = vars_[static_cast<size_t>(g)];
        if (!r.in_group) {
          r.in_group = true;
          group_linked_.push_back(g);
        }
        for_each_replica(r, [&](Replica rp) {
          if (rp.shard == s)
            return;
          open_shard(rp.shard);
          shard_flags_[static_cast<size_t>(rp.shard)] |= kShardCoupled;
          MaxMinSystem& m2 = shards_[static_cast<size_t>(rp.shard)];
          if (!(m2.var_flags_[static_cast<size_t>(rp.local)] &
                (MaxMinSystem::kFlagInSet | MaxMinSystem::kFlagDirty)))
            m2.mark_var_dirty(rp.local);
        });
      }
    }
  }
  for (ShardId s : open_)
    shards_[static_cast<size_t>(s)].closure_commit();

  uncoupled_.clear();
  coupled_.clear();
  for (ShardId s : open_) {
    if (shard_flags_[static_cast<size_t>(s)] & kShardCoupled)
      coupled_.push_back(s);
    else
      uncoupled_.push_back(s);
  }

  // Partition the coupled shards into independent groups: two shards belong
  // to the same group exactly when a chain of linked variables connects
  // them. Union-find (path halving) over each linked variable's replica
  // shards, then bucket shards in discovery order — the partition depends
  // only on the system's topology, never on lane count or timing.
  n_groups_ = 0;
  if (!coupled_.empty()) {
    for (ShardId s : coupled_) {
      uf_parent_[static_cast<size_t>(s)] = s;
      group_slot_[static_cast<size_t>(s)] = -1;
    }
    auto find_root = [&](ShardId s) {
      while (uf_parent_[static_cast<size_t>(s)] != s) {
        uf_parent_[static_cast<size_t>(s)] =
            uf_parent_[static_cast<size_t>(uf_parent_[static_cast<size_t>(s)])];
        s = uf_parent_[static_cast<size_t>(s)];
      }
      return s;
    };
    for (VarId g : group_linked_) {
      ShardId first = -1;
      for_each_replica(vars_[static_cast<size_t>(g)], [&](Replica rp) {
        const ShardId root = find_root(rp.shard);
        if (first < 0)
          first = root;
        else if (root != first)
          uf_parent_[static_cast<size_t>(root)] = first;
      });
    }
    for (ShardId s : coupled_) {
      const ShardId root = find_root(s);
      std::int32_t gi = group_slot_[static_cast<size_t>(root)];
      if (gi < 0) {
        gi = static_cast<std::int32_t>(n_groups_++);
        if (groups_.size() < n_groups_)
          groups_.emplace_back();
        groups_[static_cast<size_t>(gi)].shards.clear();
        groups_[static_cast<size_t>(gi)].linked.clear();
        group_slot_[static_cast<size_t>(root)] = gi;
      }
      groups_[static_cast<size_t>(gi)].shards.push_back(s);
    }
    for (VarId g : group_linked_) {
      // Any replica names the group — the union above merged them all.
      const VarRec& r = vars_[static_cast<size_t>(g)];
      const ShardId s0 =
          r.shard >= 0 ? r.shard : multi_[static_cast<size_t>(r.multi)][0].shard;
      groups_[static_cast<size_t>(group_slot_[static_cast<size_t>(find_root(s0))])]
          .linked.push_back(g);
    }
  }

  // Uncoupled shards: plain shard-local incremental solve — no other shard's
  // state is read or written, which is what makes them safe to fan out
  // across worker lanes while the coupled group co-solves on the caller.
  auto solve_local = [this](ShardId s) {
    MaxMinSystem& m = shards_[static_cast<size_t>(s)];
    if (m.closure_was_full_) {
      ++m.stats_.full_solves;
      m.solve_subset(m.affected_vars_, m.affected_cnsts_);
    } else if (shard_linked_[static_cast<size_t>(s)] == 0 &&
               m.affected_vars_.size() * 2 > m.live_vars_ && m.full_solve_profitable()) {
      // Whole-shard escalation is only sound when the shard hosts no linked
      // replica: solve_full() would otherwise recompute replicas outside the
      // closure locally, splitting them from their siblings (see
      // shard_linked_). Shards with linked replicas solve exactly the
      // collected closure instead.
      m.solve_full();
    } else {
      m.solve_subset(m.affected_vars_, m.affected_cnsts_);
    }
  };

  // Fan the independent work items — uncoupled shard solves AND per-group
  // joint solves — out over the lanes. Each item reads and writes only its
  // own (disjoint) shard set, so the item -> lane assignment cannot change
  // any value; solve_group defers nothing shared (changed detection below
  // is serial).
  const int n_uncoupled = static_cast<int>(uncoupled_.size());
  const int n_items = n_uncoupled + static_cast<int>(n_groups_);
  auto run_item = [&](int i) {
    if (i < n_uncoupled)
      solve_local(uncoupled_[static_cast<size_t>(i)]);
    else
      solve_group(groups_[static_cast<size_t>(i - n_uncoupled)]);
  };
  if (workers != nullptr) {
    workers->run(n_items, run_item, {}, probe);
  } else {
    const std::uint64_t t0 = probe != nullptr ? phase_clock_ns() : 0;
    for (int i = 0; i < n_items; ++i)
      run_item(i);
    if (probe != nullptr) {
      const std::uint64_t dt = phase_clock_ns() - t0;
      probe->parallel_ns += dt;
      probe->lanes[0].busy_ns += dt;
    }
  }
  group_solves_ += n_groups_;

  // Serial aggregation in a fixed order — uncoupled shards in discovery
  // order, then the coupled shards in discovery order — keeps
  // changed_variables() (and with it the engine's rate refresh) identical
  // at every lane count, and identical to the pre-partition ordering.
  for (ShardId s : uncoupled_) {
    const MaxMinSystem& m = shards_[static_cast<size_t>(s)];
    for (MaxMinSystem::VarId lv : m.changed_vars_)
      changed_vars_.push_back(var_global_[static_cast<size_t>(s)][static_cast<size_t>(lv)]);
  }
  // Coupled changed detection: a linked variable's replicas all moved
  // together, so it is reported once, from its canonical (first) replica.
  for (ShardId s : coupled_) {
    const MaxMinSystem& m = shards_[static_cast<size_t>(s)];
    for (size_t k = 0; k < m.affected_vars_.size(); ++k) {
      const size_t i = static_cast<size_t>(m.affected_vars_[k]);
      if (m.var_value_[i] == m.old_values_[k])
        continue;
      const VarId g = var_global_[static_cast<size_t>(s)][i];
      const VarRec& r = vars_[static_cast<size_t>(g)];
      if (r.shard == kMulti) {
        const Replica& head = multi_[static_cast<size_t>(r.multi)][0];
        if (head.shard != s || head.local != m.affected_vars_[k])
          continue;
      }
      changed_vars_.push_back(g);
    }
  }

  for (VarId g : group_linked_)
    vars_[static_cast<size_t>(g)].in_group = false;
  group_linked_.clear();
}

void ShardedMaxMin::solve_full() {
  std::fill(shard_dirty_.begin(), shard_dirty_.end(), static_cast<unsigned char>(1));
  for (MaxMinSystem& m : shards_)
    m.full_solve_pending_ = true;
  for (size_t g = 0; g < vars_.size(); ++g)
    if (vars_[g].alive && vars_[g].shard == kDetached)
      detached_dirty_.push_back(static_cast<VarId>(g));
  solve();
}

/// Joint progressive filling over one coupled group's affected subsets.
/// Mirrors MaxMinSystem::solve_subset exactly, with one twist: the replicas
/// of a linked logical variable are one activity. They share the growth
/// (identical delta * weight updates keep their values bitwise equal), their
/// effective bound is the min over every shard's caps, and freezing any
/// replica freezes all of them with the freezing replica's value. Touches
/// only gr's shards (plus read-only façade tables), so independent groups
/// run concurrently on worker lanes; changed detection stays in solve().
void ShardedMaxMin::solve_group(Group& gr) {
  size_t n_active = 0;

  for (ShardId s : gr.shards) {
    MaxMinSystem& m = shards_[static_cast<size_t>(s)];
    m.changed_vars_.clear();
    ++m.stats_.solves;
    if (m.closure_was_full_)
      ++m.stats_.full_solves;
    m.stats_.vars_visited += m.affected_vars_.size();
    m.old_values_.resize(m.affected_vars_.size());
    for (size_t k = 0; k < m.affected_vars_.size(); ++k) {
      const size_t i = static_cast<size_t>(m.affected_vars_[k]);
      m.old_values_[k] = m.var_value_[i];
      m.var_value_[i] = 0;
      m.effective_bound_[i] = kInf;
      if (m.var_weight_[i] <= 0)
        continue;
      m.var_flags_[i] |= MaxMinSystem::kFlagActive;
      // Linked logical variables are counted once, below.
      if (!(m.var_flags_[i] & MaxMinSystem::kFlagLinked))
        ++n_active;
      if (m.var_bound_[i] >= 0)
        m.effective_bound_[i] = m.var_bound_[i];
    }
    // Fatpipe constraints translate to per-variable caps: cap / coeff.
    for (MaxMinSystem::CnstId cid : m.affected_cnsts_) {
      const size_t c = static_cast<size_t>(cid);
      m.remaining_[c] = m.cnst_core_[c].capacity;
      if (m.cnst_flags_[c] & MaxMinSystem::kFlagShared)
        continue;
      for (std::int32_t nd = m.cnst_core_[c].head; nd != MaxMinSystem::kNoNode; nd = m.node(nd).next) {
        const MaxMinSystem::ElemNode& en = m.node(nd);
        for (std::int32_t k = 0; k < en.count; ++k) {
          const size_t i = static_cast<size_t>(en.id[k]);
          if (m.var_flags_[i] & MaxMinSystem::kFlagActive)
            m.effective_bound_[i] =
                std::min(m.effective_bound_[i], m.cnst_core_[c].capacity / en.coeff[k]);
        }
      }
    }
  }

  // Linked logical variables: fold every shard's caps into one shared
  // effective bound, and count each once. Every replica of every group
  // variable is in its shard's affected set (the closure fixpoint seeded
  // them), so the folds below see all of them.
  for (VarId g : gr.linked) {
    const VarRec& r = vars_[static_cast<size_t>(g)];
    if (!r.alive)
      continue;
    double eb = kInf;
    bool active = false;
    for_each_replica(r, [&](Replica rp) {
      MaxMinSystem& m = shards_[static_cast<size_t>(rp.shard)];
      eb = std::min(eb, m.effective_bound_[static_cast<size_t>(rp.local)]);
      active = (m.var_flags_[static_cast<size_t>(rp.local)] & MaxMinSystem::kFlagActive) != 0;
    });
    for_each_replica(r, [&](Replica rp) {
      shards_[static_cast<size_t>(rp.shard)].effective_bound_[static_cast<size_t>(rp.local)] = eb;
    });
    if (active)
      ++n_active;
  }

  size_t frozen = 0;
  auto freeze_var = [&](ShardId s, size_t i) {
    MaxMinSystem& m = shards_[static_cast<size_t>(s)];
    if (!(m.var_flags_[i] & MaxMinSystem::kFlagActive))
      return;
    m.var_flags_[i] &= static_cast<unsigned char>(~MaxMinSystem::kFlagActive);
    ++frozen;
    if (m.var_flags_[i] & MaxMinSystem::kFlagLinked) {
      const VarId g = var_global_[static_cast<size_t>(s)][i];
      const double val = m.var_value_[i];
      for_each_replica(vars_[static_cast<size_t>(g)], [&](Replica rp) {
        if (rp.shard == s)
          return;
        MaxMinSystem& m2 = shards_[static_cast<size_t>(rp.shard)];
        m2.var_flags_[static_cast<size_t>(rp.local)] &=
            static_cast<unsigned char>(~MaxMinSystem::kFlagActive);
        m2.var_value_[static_cast<size_t>(rp.local)] = val;  // no epsilon split
      });
    }
  };

  while (n_active > 0) {
    // Growth room before the tightest shared constraint saturates or a
    // variable bound is reached — the min is global across the group.
    double delta = kInf;
    for (ShardId s : gr.shards) {
      MaxMinSystem& m = shards_[static_cast<size_t>(s)];
      for (MaxMinSystem::CnstId cid : m.affected_cnsts_) {
        const size_t c = static_cast<size_t>(cid);
        if (!(m.cnst_flags_[c] & MaxMinSystem::kFlagShared))
          continue;
        double denom = 0;
        for (std::int32_t nd = m.cnst_core_[c].head; nd != MaxMinSystem::kNoNode;
             nd = m.node(nd).next) {
          const MaxMinSystem::ElemNode& en = m.node(nd);
          for (std::int32_t k = 0; k < en.count; ++k) {
            const size_t i = static_cast<size_t>(en.id[k]);
            if (m.var_flags_[i] & MaxMinSystem::kFlagActive)
              denom += en.coeff[k] * m.var_weight_[i];
          }
        }
        if (denom > 0)
          delta = std::min(delta, std::max(0.0, m.remaining_[c]) / denom);
      }
      for (MaxMinSystem::VarId vid : m.affected_vars_) {
        const size_t i = static_cast<size_t>(vid);
        if ((m.var_flags_[i] & MaxMinSystem::kFlagActive) && m.effective_bound_[i] < kInf)
          delta = std::min(delta,
                           std::max(0.0, m.effective_bound_[i] - m.var_value_[i]) / m.var_weight_[i]);
      }
    }

    if (delta == kInf) {
      // Unconstrained variables: give them the "infinite" rate and stop.
      for (ShardId s : gr.shards) {
        MaxMinSystem& m = shards_[static_cast<size_t>(s)];
        for (MaxMinSystem::VarId vid : m.affected_vars_) {
          const size_t i = static_cast<size_t>(vid);
          if (m.var_flags_[i] & MaxMinSystem::kFlagActive) {
            m.var_value_[i] = kUnlimited;
            m.var_flags_[i] &= static_cast<unsigned char>(~MaxMinSystem::kFlagActive);
          }
        }
      }
      break;
    }

    // Grow everyone, consume capacities. Replicas of a linked variable apply
    // the identical update in each shard, so their values stay equal.
    for (ShardId s : gr.shards) {
      MaxMinSystem& m = shards_[static_cast<size_t>(s)];
      for (MaxMinSystem::VarId vid : m.affected_vars_) {
        const size_t i = static_cast<size_t>(vid);
        if (m.var_flags_[i] & MaxMinSystem::kFlagActive)
          m.var_value_[i] += delta * m.var_weight_[i];
      }
      for (MaxMinSystem::CnstId cid : m.affected_cnsts_) {
        const size_t c = static_cast<size_t>(cid);
        if (!(m.cnst_flags_[c] & MaxMinSystem::kFlagShared))
          continue;
        double used = 0;
        for (std::int32_t nd = m.cnst_core_[c].head; nd != MaxMinSystem::kNoNode;
             nd = m.node(nd).next) {
          const MaxMinSystem::ElemNode& en = m.node(nd);
          for (std::int32_t k = 0; k < en.count; ++k) {
            const size_t i = static_cast<size_t>(en.id[k]);
            if (m.var_flags_[i] & MaxMinSystem::kFlagActive)
              used += en.coeff[k] * m.var_weight_[i];
          }
        }
        m.remaining_[c] -= delta * used;
      }
    }

    // Freeze variables on saturated shared constraints, then those that
    // reached their bound. Freezing a linked replica freezes its siblings.
    frozen = 0;
    for (ShardId s : gr.shards) {
      MaxMinSystem& m = shards_[static_cast<size_t>(s)];
      for (MaxMinSystem::CnstId cid : m.affected_cnsts_) {
        const size_t c = static_cast<size_t>(cid);
        if (!(m.cnst_flags_[c] & MaxMinSystem::kFlagShared))
          continue;
        bool involved = false;
        for (std::int32_t nd = m.cnst_core_[c].head; nd != MaxMinSystem::kNoNode && !involved;
             nd = m.node(nd).next) {
          const MaxMinSystem::ElemNode& en = m.node(nd);
          for (std::int32_t k = 0; k < en.count; ++k)
            if (m.var_flags_[static_cast<size_t>(en.id[k])] & MaxMinSystem::kFlagActive) {
              involved = true;
              break;
            }
        }
        if (!involved)
          continue;
        if (m.remaining_[c] <= kEps * std::max(1.0, m.cnst_core_[c].capacity)) {
          for (std::int32_t nd = m.cnst_core_[c].head; nd != MaxMinSystem::kNoNode;
               nd = m.node(nd).next) {
            const MaxMinSystem::ElemNode& en = m.node(nd);
            for (std::int32_t k = 0; k < en.count; ++k)
              freeze_var(s, static_cast<size_t>(en.id[k]));
          }
        }
      }
      for (MaxMinSystem::VarId vid : m.affected_vars_) {
        const size_t i = static_cast<size_t>(vid);
        if ((m.var_flags_[i] & MaxMinSystem::kFlagActive) && m.effective_bound_[i] < kInf &&
            m.var_value_[i] >= m.effective_bound_[i] - kEps * std::max(1.0, m.effective_bound_[i])) {
          m.var_value_[i] = m.effective_bound_[i];
          freeze_var(s, i);
        }
      }
    }

    if (frozen == 0) {
      // delta chosen as an exact saturation point must freeze someone; if
      // numerical dust prevented it, force-freeze the tightest variable to
      // guarantee termination.
      for (ShardId s : gr.shards) {
        MaxMinSystem& m = shards_[static_cast<size_t>(s)];
        for (MaxMinSystem::VarId vid : m.affected_vars_) {
          if (m.var_flags_[static_cast<size_t>(vid)] & MaxMinSystem::kFlagActive) {
            freeze_var(s, static_cast<size_t>(vid));
            break;
          }
        }
        if (frozen > 0)
          break;
      }
    }
    n_active -= frozen;
  }
}

}  // namespace sg::core
