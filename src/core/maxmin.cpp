#include "core/maxmin.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "xbt/exception.hpp"

namespace sg::core {

namespace {
constexpr double kEps = 1e-9;
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

// ---------------------------------------------------------------------------
// Element arena
// ---------------------------------------------------------------------------

std::int32_t MaxMinSystem::alloc_node() {
  std::int32_t n;
  if (free_nodes_ != kNoNode) {
    n = free_nodes_;
    free_nodes_ = node(n).next;
  } else {
    if (static_cast<size_t>(arena_size_) == chunks_.size() * kChunkNodes)
      chunks_.push_back(std::make_unique<ElemNode[]>(kChunkNodes));
    n = arena_size_++;
  }
  ++nodes_in_use_;
  ElemNode& nd = node(n);
  nd.count = 0;
  nd.next = kNoNode;
  return n;
}

void MaxMinSystem::free_node(std::int32_t n) {
  node(n).next = free_nodes_;
  free_nodes_ = n;
  --nodes_in_use_;
}

void MaxMinSystem::list_insert(std::int32_t& head, std::int32_t peer, double coeff) {
  if (head == kNoNode || node(head).count == kNodeEntries) {
    // Prepend a fresh node (order within a list is irrelevant to the math).
    const std::int32_t n = alloc_node();
    ElemNode& nd = node(n);
    nd.next = head;
    nd.count = 1;
    nd.id[0] = peer;
    nd.coeff[0] = coeff;
    head = n;
    return;
  }
  ElemNode& nd = node(head);
  nd.id[nd.count] = peer;
  nd.coeff[nd.count] = coeff;
  ++nd.count;
}

std::int32_t MaxMinSystem::list_remove_all(std::int32_t& head, std::int32_t peer) {
  std::int32_t removed = 0;
  std::int32_t* link = &head;
  while (*link != kNoNode) {
    ElemNode& nd = node(*link);
    for (std::int32_t k = 0; k < nd.count;) {
      if (nd.id[k] == peer) {
        // Node-local swap-remove: other nodes stay untouched.
        --nd.count;
        nd.id[k] = nd.id[nd.count];
        nd.coeff[k] = nd.coeff[nd.count];
        ++removed;
      } else {
        ++k;
      }
    }
    if (nd.count == 0) {
      const std::int32_t dead = *link;
      *link = nd.next;
      free_node(dead);
    } else {
      link = &nd.next;
    }
  }
  return removed;
}

void MaxMinSystem::list_free(std::int32_t& head) {
  while (head != kNoNode) {
    const std::int32_t n = head;
    head = node(n).next;
    free_node(n);
  }
}

// ---------------------------------------------------------------------------
// Id management and mutations
// ---------------------------------------------------------------------------

void MaxMinSystem::check_var(VarId var, const char* what) const {
  if (var < 0 || static_cast<size_t>(var) >= var_weight_.size())
    throw xbt::InvalidArgument(std::string(what) + ": variable id " + std::to_string(var) +
                               " out of range");
}

void MaxMinSystem::check_cnst(CnstId cnst, const char* what) const {
  if (cnst < 0 || static_cast<size_t>(cnst) >= cnst_core_.size())
    throw xbt::InvalidArgument(std::string(what) + ": constraint id " + std::to_string(cnst) +
                               " out of range");
}

void MaxMinSystem::mark_var_dirty(VarId var) {
  if (full_solve_pending_ || (var_flags_[static_cast<size_t>(var)] & kFlagDirty))
    return;
  var_flags_[static_cast<size_t>(var)] |= kFlagDirty;
  dirty_vars_.push_back(var);
}

void MaxMinSystem::mark_cnst_dirty(CnstId cnst, bool need_traverse) {
  if (full_solve_pending_)
    return;
  unsigned char& flags = cnst_flags_[static_cast<size_t>(cnst)];
  // Shared constraints couple their users, so any change propagates to all of
  // them. A fatpipe caps each user independently: only a capacity change
  // (need_traverse) concerns users other than the (separately dirtied)
  // variable being added/removed.
  need_traverse = need_traverse || (flags & kFlagShared);
  if (flags & kFlagDirty) {
    if (need_traverse)
      flags |= kFlagTraverse;
    return;
  }
  flags |= kFlagDirty;
  if (need_traverse)
    flags |= kFlagTraverse;
  else
    flags &= static_cast<unsigned char>(~kFlagTraverse);
  dirty_cnsts_.push_back(cnst);
}

MaxMinSystem::CnstId MaxMinSystem::new_constraint(double capacity, bool shared) {
  if (capacity < 0)
    throw xbt::InvalidArgument("constraint capacity must be non-negative");
  CnstId id;
  if (!free_cnsts_.empty()) {
    id = free_cnsts_.back();
    free_cnsts_.pop_back();
    const size_t i = static_cast<size_t>(id);
    // release_constraint already freed the element list and zeroed the
    // degree; keep the dirty bit as-is (a pending seed is merely harmless).
    cnst_core_[i].capacity = capacity;
    cnst_flags_[i] |= kFlagAlive;
    if (shared)
      cnst_flags_[i] |= kFlagShared;
    else
      cnst_flags_[i] &= static_cast<unsigned char>(~kFlagShared);
  } else {
    id = static_cast<CnstId>(cnst_core_.size());
    cnst_core_.push_back({capacity, kNoNode, 0});
    cnst_flags_.push_back(static_cast<unsigned char>(kFlagAlive | (shared ? kFlagShared : 0)));
    remaining_.push_back(0);
  }
  ++live_cnsts_;
  return id;
}

void MaxMinSystem::release_constraint(CnstId cnst) {
  check_cnst(cnst, "release_constraint");
  const size_t i = static_cast<size_t>(cnst);
  if (!(cnst_flags_[i] & kFlagAlive))
    return;
  cnst_flags_[i] &= static_cast<unsigned char>(~kFlagAlive);
  // Every user loses a cap/share: remove the back-references and re-solve
  // the freed variables' components.
  for (std::int32_t n = cnst_core_[i].head; n != kNoNode; n = node(n).next) {
    const ElemNode& nd = node(n);
    for (std::int32_t k = 0; k < nd.count; ++k) {
      const VarId v = nd.id[k];
      const std::int32_t removed = list_remove_all(var_link_[static_cast<size_t>(v)].head, cnst);
      if (removed > 0) {  // duplicates were already removed by an earlier pass
        var_link_[static_cast<size_t>(v)].degree -= removed;
        mark_var_dirty(v);
      }
    }
  }
  list_free(cnst_core_[i].head);
  cnst_core_[i].degree = 0;
  free_cnsts_.push_back(cnst);
  --live_cnsts_;
}

MaxMinSystem::VarId MaxMinSystem::new_variable(double weight, double bound) {
  if (weight < 0)
    throw xbt::InvalidArgument("variable weight must be non-negative");
  VarId id;
  if (!free_vars_.empty()) {
    // Recycle in place: the SoA slots and the (just-freed, cache-hot) arena
    // nodes of the released variable are what churn workloads re-use.
    id = free_vars_.back();
    free_vars_.pop_back();
    const size_t i = static_cast<size_t>(id);
    var_weight_[i] = weight;
    var_bound_[i] = bound;
    var_value_[i] = 0;
    var_flags_[i] |= kFlagAlive;
  } else {
    id = static_cast<VarId>(var_weight_.size());
    var_weight_.push_back(weight);
    var_bound_.push_back(bound);
    var_value_.push_back(0);
    var_flags_.push_back(kFlagAlive);
    var_link_.push_back({kNoNode, 0});
    effective_bound_.push_back(kInf);
  }
  ++live_vars_;
  mark_var_dirty(id);
  return id;
}

void MaxMinSystem::expand(CnstId cnst, VarId var, double coeff) {
  if (coeff <= 0)
    throw xbt::InvalidArgument("element coefficient must be positive");
  check_cnst(cnst, "expand");
  check_var(var, "expand");
  if (!(var_flags_[static_cast<size_t>(var)] & kFlagAlive))
    throw xbt::InvalidArgument("expand: variable id " + std::to_string(var) + " was released");
  if (!(cnst_flags_[static_cast<size_t>(cnst)] & kFlagAlive))
    throw xbt::InvalidArgument("expand: constraint id " + std::to_string(cnst) + " was released");
  CnstCore& cc = cnst_core_[static_cast<size_t>(cnst)];
  list_insert(cc.head, var, coeff);
  ++cc.degree;
  VarLink& vl = var_link_[static_cast<size_t>(var)];
  list_insert(vl.head, cnst, coeff);
  ++vl.degree;
  // The constraint's existing users must re-share with the newcomer
  // (membership change: fatpipes stay cap-only).
  mark_cnst_dirty(cnst, /*need_traverse=*/false);
  mark_var_dirty(var);
}

void MaxMinSystem::release_variable(VarId var) {
  check_var(var, "release_variable");
  const size_t i = static_cast<size_t>(var);
  if (!(var_flags_[i] & kFlagAlive))
    return;
  var_flags_[i] &= static_cast<unsigned char>(~kFlagAlive);
  var_value_[i] = 0;
  for (std::int32_t n = var_link_[i].head; n != kNoNode; n = node(n).next) {
    const ElemNode& nd = node(n);
    for (std::int32_t k = 0; k < nd.count; ++k) {
      const CnstId c = nd.id[k];
      // Eager removal: a stale element would silently re-attach to whatever
      // variable later recycles this id. The constraint is re-solved anyway
      // (it is dirty), so the scan does not change the asymptotic cost.
      const std::int32_t removed = list_remove_all(cnst_core_[static_cast<size_t>(c)].head, var);
      if (removed > 0) {
        cnst_core_[static_cast<size_t>(c)].degree -= removed;
        // The freed share must be redistributed among the constraint's users
        // (membership change: fatpipes stay cap-only).
        mark_cnst_dirty(c, /*need_traverse=*/false);
      }
    }
  }
  list_free(var_link_[i].head);
  var_link_[i].degree = 0;
  free_vars_.push_back(var);
  --live_vars_;
}

void MaxMinSystem::set_capacity(CnstId cnst, double capacity) {
  if (capacity < 0)
    throw xbt::InvalidArgument("constraint capacity must be non-negative");
  check_cnst(cnst, "set_capacity");
  CnstCore& cc = cnst_core_[static_cast<size_t>(cnst)];
  if (cc.capacity == capacity)
    return;
  cc.capacity = capacity;
  // A capacity change moves every user's cap, so fatpipes traverse too.
  mark_cnst_dirty(cnst, /*need_traverse=*/true);
}

double MaxMinSystem::capacity(CnstId cnst) const {
  check_cnst(cnst, "capacity");
  return cnst_core_[static_cast<size_t>(cnst)].capacity;
}

void MaxMinSystem::set_weight(VarId var, double weight) {
  if (weight < 0)
    throw xbt::InvalidArgument("variable weight must be non-negative");
  if (var_weight_.at(static_cast<size_t>(var)) == weight)
    return;
  var_weight_[static_cast<size_t>(var)] = weight;
  if (var_flags_[static_cast<size_t>(var)] & kFlagAlive)
    mark_var_dirty(var);
}

double MaxMinSystem::weight(VarId var) const { return var_weight_.at(static_cast<size_t>(var)); }

void MaxMinSystem::set_bound(VarId var, double bound) {
  if (var_bound_.at(static_cast<size_t>(var)) == bound)
    return;
  var_bound_[static_cast<size_t>(var)] = bound;
  if (var_flags_[static_cast<size_t>(var)] & kFlagAlive)
    mark_var_dirty(var);
}

double MaxMinSystem::bound(VarId var) const { return var_bound_.at(static_cast<size_t>(var)); }

double MaxMinSystem::value(VarId var) const { return var_value_.at(static_cast<size_t>(var)); }

double MaxMinSystem::usage(CnstId cnst) const {
  check_cnst(cnst, "usage");
  const bool shared = (cnst_flags_[static_cast<size_t>(cnst)] & kFlagShared) != 0;
  double total = 0;
  for (std::int32_t n = cnst_core_[static_cast<size_t>(cnst)].head; n != kNoNode; n = node(n).next) {
    const ElemNode& nd = node(n);
    for (std::int32_t k = 0; k < nd.count; ++k) {
      const double u = nd.coeff[k] * var_value_[static_cast<size_t>(nd.id[k])];
      total = shared ? total + u : std::max(total, u);
    }
  }
  return total;
}

size_t MaxMinSystem::constraint_degree(CnstId cnst) const {
  check_cnst(cnst, "constraint_degree");
  return static_cast<size_t>(cnst_core_[static_cast<size_t>(cnst)].degree);
}

size_t MaxMinSystem::variable_degree(VarId var) const {
  check_var(var, "variable_degree");
  return static_cast<size_t>(var_link_[static_cast<size_t>(var)].degree);
}

MaxMinSystem::MemoryStats MaxMinSystem::memory_stats() const {
  MemoryStats m;
  m.live_variables = live_vars_;
  m.live_constraints = live_cnsts_;
  m.arena_nodes_in_use = nodes_in_use_;
  m.arena_nodes_allocated = static_cast<size_t>(arena_size_);
  m.arena_bytes = chunks_.size() * kChunkNodes * sizeof(ElemNode);
  auto cap_bytes = [](const auto& v) { return v.capacity() * sizeof(v[0]); };
  m.soa_bytes = cap_bytes(cnst_core_) + cap_bytes(cnst_flags_) + cap_bytes(free_cnsts_) +
                cap_bytes(var_weight_) + cap_bytes(var_bound_) + cap_bytes(var_value_) +
                cap_bytes(var_flags_) + cap_bytes(var_link_) + cap_bytes(free_vars_) +
                cap_bytes(effective_bound_) + cap_bytes(remaining_);
  return m;
}

// ---------------------------------------------------------------------------
// Solving
// ---------------------------------------------------------------------------

void MaxMinSystem::solve() {
  if (full_solve_pending_) {
    solve_full();
    return;
  }
  if (dirty_vars_.empty() && dirty_cnsts_.empty()) {
    changed_vars_.clear();
    return;
  }

  // Transitive closure of the dirty seeds over the variable-constraint graph:
  // the union of the connected components whose allocation can have changed.
  // Fatpipe constraints cap each user individually and do not couple them, so
  // they do not propagate the closure var -> fatpipe -> other vars: they are
  // included cap-only (traversed only when themselves dirty). This keeps a
  // shared backbone fatpipe from merging every flow into one component.
  affected_vars_.clear();
  affected_cnsts_.clear();
  traverse_cnst_.clear();
  auto add_var = [&](VarId v) {
    unsigned char& flags = var_flags_[static_cast<size_t>(v)];
    if (!(flags & kFlagInSet) && (flags & kFlagAlive)) {
      flags |= kFlagInSet;
      affected_vars_.push_back(v);
    }
  };
  auto add_cnst = [&](CnstId c, bool traverse) {
    unsigned char& flags = cnst_flags_[static_cast<size_t>(c)];
    if (!(flags & kFlagInSet) && (flags & kFlagAlive)) {
      flags |= kFlagInSet;
      affected_cnsts_.push_back(c);
      traverse_cnst_.push_back(traverse ? 1 : 0);
    }
  };
  // Seeds first: a capacity-dirty fatpipe must reach all its users, so it is
  // added traversable before any cap-only inclusion could shadow it. A
  // membership-dirty fatpipe stays cap-only — adding/removing one user does
  // not move the others' caps.
  for (CnstId c : dirty_cnsts_)
    add_cnst(c, (cnst_flags_[static_cast<size_t>(c)] & kFlagTraverse) != 0);
  for (VarId v : dirty_vars_)
    add_var(v);
  size_t vi = 0, ci = 0;
  while (vi < affected_vars_.size() || ci < affected_cnsts_.size()) {
    if (vi < affected_vars_.size()) {
      const VarId v = affected_vars_[vi++];
      for_each_constraint_of(v, [&](CnstId c, double) {
        add_cnst(c, (cnst_flags_[static_cast<size_t>(c)] & kFlagShared) != 0);
      });
    } else {
      if (traverse_cnst_[ci]) {
        for_each_variable_on(affected_cnsts_[ci], [&](VarId v, double) { add_var(v); });
      }
      ++ci;
    }
  }

  for (VarId v : dirty_vars_)
    var_flags_[static_cast<size_t>(v)] &= static_cast<unsigned char>(~kFlagDirty);
  dirty_vars_.clear();
  for (CnstId c : dirty_cnsts_)
    cnst_flags_[static_cast<size_t>(c)] &= static_cast<unsigned char>(~(kFlagDirty | kFlagTraverse));
  dirty_cnsts_.clear();

  for (VarId v : affected_vars_)
    var_flags_[static_cast<size_t>(v)] &= static_cast<unsigned char>(~kFlagInSet);
  for (CnstId c : affected_cnsts_)
    cnst_flags_[static_cast<size_t>(c)] &= static_cast<unsigned char>(~kFlagInSet);

  if (affected_vars_.size() * 2 > live_vars_) {
    solve_full();
    return;
  }
  solve_subset(affected_vars_, affected_cnsts_);
}

void MaxMinSystem::solve_full() {
  affected_vars_.clear();
  affected_cnsts_.clear();
  for (size_t i = 0; i < var_flags_.size(); ++i)
    if (var_flags_[i] & kFlagAlive)
      affected_vars_.push_back(static_cast<VarId>(i));
  for (size_t c = 0; c < cnst_flags_.size(); ++c)
    if (cnst_flags_[c] & kFlagAlive)
      affected_cnsts_.push_back(static_cast<CnstId>(c));

  for (VarId v : dirty_vars_)
    var_flags_[static_cast<size_t>(v)] &= static_cast<unsigned char>(~kFlagDirty);
  dirty_vars_.clear();
  for (CnstId c : dirty_cnsts_)
    cnst_flags_[static_cast<size_t>(c)] &= static_cast<unsigned char>(~(kFlagDirty | kFlagTraverse));
  dirty_cnsts_.clear();
  full_solve_pending_ = false;

  ++stats_.full_solves;
  solve_subset(affected_vars_, affected_cnsts_);
}

void MaxMinSystem::solve_subset(const std::vector<VarId>& svars, const std::vector<CnstId>& scnsts) {
  ++stats_.solves;
  stats_.vars_visited += svars.size();

  // Working state, persistent across solves. The active bit — still growing
  // (all clear between solves). `effective_bound_[i]` folds the variable's
  // own bound together with its fatpipe caps. All hot fields are SoA arrays,
  // so these loops touch exactly the cache lines of the subset's ids.
  size_t n_active = 0;
  old_values_.resize(svars.size());
  for (size_t k = 0; k < svars.size(); ++k) {
    const size_t i = static_cast<size_t>(svars[k]);
    old_values_[k] = var_value_[i];
    var_value_[i] = 0;
    effective_bound_[i] = kInf;
    if (var_weight_[i] <= 0)
      continue;
    var_flags_[i] |= kFlagActive;
    ++n_active;
    if (var_bound_[i] >= 0)
      effective_bound_[i] = var_bound_[i];
  }

  // Fatpipe constraints translate to per-variable caps: cap / coeff.
  for (CnstId cid : scnsts) {
    const size_t c = static_cast<size_t>(cid);
    remaining_[c] = cnst_core_[c].capacity;
    if (cnst_flags_[c] & kFlagShared)
      continue;
    for (std::int32_t n = cnst_core_[c].head; n != kNoNode; n = node(n).next) {
      const ElemNode& nd = node(n);
      for (std::int32_t k = 0; k < nd.count; ++k) {
        const size_t i = static_cast<size_t>(nd.id[k]);
        if (var_flags_[i] & kFlagActive)
          effective_bound_[i] = std::min(effective_bound_[i], cnst_core_[c].capacity / nd.coeff[k]);
      }
    }
  }

  while (n_active > 0) {
    // Growth room before the tightest shared constraint saturates.
    double delta = kInf;
    for (CnstId cid : scnsts) {
      const size_t c = static_cast<size_t>(cid);
      if (!(cnst_flags_[c] & kFlagShared))
        continue;
      double denom = 0;
      for (std::int32_t n = cnst_core_[c].head; n != kNoNode; n = node(n).next) {
        const ElemNode& nd = node(n);
        for (std::int32_t k = 0; k < nd.count; ++k) {
          const size_t i = static_cast<size_t>(nd.id[k]);
          if (var_flags_[i] & kFlagActive)
            denom += nd.coeff[k] * var_weight_[i];
        }
      }
      if (denom > 0)
        delta = std::min(delta, std::max(0.0, remaining_[c]) / denom);
    }
    // Growth room before a variable bound is reached.
    for (VarId vid : svars) {
      const size_t i = static_cast<size_t>(vid);
      if ((var_flags_[i] & kFlagActive) && effective_bound_[i] < kInf)
        delta = std::min(delta, std::max(0.0, effective_bound_[i] - var_value_[i]) / var_weight_[i]);
    }

    if (delta == kInf) {
      // Unconstrained variables: give them the "infinite" rate and stop.
      for (VarId vid : svars) {
        const size_t i = static_cast<size_t>(vid);
        if (var_flags_[i] & kFlagActive) {
          var_value_[i] = kUnlimited;
          var_flags_[i] &= static_cast<unsigned char>(~kFlagActive);
        }
      }
      break;
    }

    // Grow everyone, consume capacities.
    for (VarId vid : svars) {
      const size_t i = static_cast<size_t>(vid);
      if (var_flags_[i] & kFlagActive)
        var_value_[i] += delta * var_weight_[i];
    }
    for (CnstId cid : scnsts) {
      const size_t c = static_cast<size_t>(cid);
      if (!(cnst_flags_[c] & kFlagShared))
        continue;
      double used = 0;
      for (std::int32_t n = cnst_core_[c].head; n != kNoNode; n = node(n).next) {
        const ElemNode& nd = node(n);
        for (std::int32_t k = 0; k < nd.count; ++k) {
          const size_t i = static_cast<size_t>(nd.id[k]);
          if (var_flags_[i] & kFlagActive)
            used += nd.coeff[k] * var_weight_[i];
        }
      }
      remaining_[c] -= delta * used;
    }

    // Freeze variables on saturated shared constraints.
    size_t frozen = 0;
    for (CnstId cid : scnsts) {
      const size_t c = static_cast<size_t>(cid);
      if (!(cnst_flags_[c] & kFlagShared))
        continue;
      bool involved = false;
      for (std::int32_t n = cnst_core_[c].head; n != kNoNode && !involved; n = node(n).next) {
        const ElemNode& nd = node(n);
        for (std::int32_t k = 0; k < nd.count; ++k)
          if (var_flags_[static_cast<size_t>(nd.id[k])] & kFlagActive) {
            involved = true;
            break;
          }
      }
      if (!involved)
        continue;
      if (remaining_[c] <= kEps * std::max(1.0, cnst_core_[c].capacity)) {
        for (std::int32_t n = cnst_core_[c].head; n != kNoNode; n = node(n).next) {
          const ElemNode& nd = node(n);
          for (std::int32_t k = 0; k < nd.count; ++k) {
            const size_t i = static_cast<size_t>(nd.id[k]);
            if (var_flags_[i] & kFlagActive) {
              var_flags_[i] &= static_cast<unsigned char>(~kFlagActive);
              ++frozen;
            }
          }
        }
      }
    }
    // Freeze variables that reached their (effective) bound.
    for (VarId vid : svars) {
      const size_t i = static_cast<size_t>(vid);
      if ((var_flags_[i] & kFlagActive) && effective_bound_[i] < kInf &&
          var_value_[i] >= effective_bound_[i] - kEps * std::max(1.0, effective_bound_[i])) {
        var_value_[i] = effective_bound_[i];
        var_flags_[i] &= static_cast<unsigned char>(~kFlagActive);
        ++frozen;
      }
    }

    if (frozen == 0) {
      // delta chosen as an exact saturation point must freeze someone;
      // if numerical dust prevented it, force-freeze the tightest variable
      // to guarantee termination.
      for (VarId vid : svars) {
        const size_t i = static_cast<size_t>(vid);
        if (var_flags_[i] & kFlagActive) {
          var_flags_[i] &= static_cast<unsigned char>(~kFlagActive);
          ++frozen;
          break;
        }
      }
    }
    n_active -= frozen;
  }

  changed_vars_.clear();
  for (size_t k = 0; k < svars.size(); ++k)
    if (var_value_[static_cast<size_t>(svars[k])] != old_values_[k])
      changed_vars_.push_back(svars[k]);
}

}  // namespace sg::core
