#include "core/maxmin.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "xbt/exception.hpp"

namespace sg::core {

namespace {
constexpr double kEps = 1e-9;
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

void MaxMinSystem::mark_var_dirty(VarId var) {
  if (full_solve_pending_ || var_dirty_[static_cast<size_t>(var)])
    return;
  var_dirty_[static_cast<size_t>(var)] = 1;
  dirty_vars_.push_back(var);
}

void MaxMinSystem::mark_cnst_dirty(CnstId cnst, bool need_traverse) {
  if (full_solve_pending_)
    return;
  // Shared constraints couple their users, so any change propagates to all of
  // them. A fatpipe caps each user independently: only a capacity change
  // (need_traverse) concerns users other than the (separately dirtied)
  // variable being added/removed.
  need_traverse = need_traverse || cnsts_[static_cast<size_t>(cnst)].shared;
  if (cnst_dirty_[static_cast<size_t>(cnst)]) {
    if (need_traverse)
      cnst_dirty_traverse_[static_cast<size_t>(cnst)] = 1;
    return;
  }
  cnst_dirty_[static_cast<size_t>(cnst)] = 1;
  cnst_dirty_traverse_[static_cast<size_t>(cnst)] = need_traverse ? 1 : 0;
  dirty_cnsts_.push_back(cnst);
}

MaxMinSystem::CnstId MaxMinSystem::new_constraint(double capacity, bool shared) {
  if (capacity < 0)
    throw xbt::InvalidArgument("constraint capacity must be non-negative");
  cnsts_.push_back({capacity, shared, {}});
  cnst_dirty_.push_back(0);
  cnst_dirty_traverse_.push_back(0);
  cnst_in_set_.push_back(0);
  remaining_.push_back(0);
  return static_cast<CnstId>(cnsts_.size() - 1);
}

MaxMinSystem::VarId MaxMinSystem::new_variable(double weight, double bound) {
  if (weight < 0)
    throw xbt::InvalidArgument("variable weight must be non-negative");
  VarId id;
  if (!free_vars_.empty()) {
    id = free_vars_.back();
    free_vars_.pop_back();
    // Reset in place: release_variable() already cleared cnsts/coeffs, and
    // reusing their capacity spares two deallocate/reallocate pairs per
    // recycled variable — the common case in churn workloads.
    Variable& v = vars_[static_cast<size_t>(id)];
    v.weight = weight;
    v.bound = bound;
    v.value = 0;
    v.alive = true;
  } else {
    vars_.push_back(Variable{weight, bound, 0, true, {}, {}});
    id = static_cast<VarId>(vars_.size() - 1);
    var_dirty_.push_back(0);
    var_in_set_.push_back(0);
    active_.push_back(0);
    effective_bound_.push_back(kInf);
  }
  ++live_vars_;
  mark_var_dirty(id);
  return id;
}

void MaxMinSystem::expand(CnstId cnst, VarId var, double coeff) {
  if (coeff <= 0)
    throw xbt::InvalidArgument("element coefficient must be positive");
  if (cnst < 0 || static_cast<size_t>(cnst) >= cnsts_.size())
    throw xbt::InvalidArgument("expand: constraint id " + std::to_string(cnst) + " out of range");
  if (var < 0 || static_cast<size_t>(var) >= vars_.size())
    throw xbt::InvalidArgument("expand: variable id " + std::to_string(var) + " out of range");
  Variable& v = vars_[static_cast<size_t>(var)];
  if (!v.alive)
    throw xbt::InvalidArgument("expand: variable id " + std::to_string(var) + " was released");
  cnsts_[static_cast<size_t>(cnst)].elems.push_back({var, coeff});
  v.cnsts.push_back(cnst);
  v.coeffs.push_back(coeff);
  // The constraint's existing users must re-share with the newcomer
  // (membership change: fatpipes stay cap-only).
  mark_cnst_dirty(cnst, /*need_traverse=*/false);
  mark_var_dirty(var);
}

void MaxMinSystem::release_variable(VarId var) {
  Variable& v = vars_.at(static_cast<size_t>(var));
  if (!v.alive)
    return;
  v.alive = false;
  v.value = 0;
  for (CnstId c : v.cnsts) {
    Constraint& cnst = cnsts_[static_cast<size_t>(c)];
    // Eager removal: a stale element would silently re-attach to whatever
    // variable later recycles this id. The constraint is re-solved anyway
    // (it is dirty), so the scan does not change the asymptotic cost.
    std::erase_if(cnst.elems, [var](const Element& e) { return e.var == var; });
    // The freed share must be redistributed among the constraint's users
    // (membership change: fatpipes stay cap-only).
    mark_cnst_dirty(c, /*need_traverse=*/false);
  }
  v.cnsts.clear();
  v.coeffs.clear();
  free_vars_.push_back(var);
  --live_vars_;
}

void MaxMinSystem::set_capacity(CnstId cnst, double capacity) {
  if (capacity < 0)
    throw xbt::InvalidArgument("constraint capacity must be non-negative");
  Constraint& c = cnsts_.at(static_cast<size_t>(cnst));
  if (c.capacity == capacity)
    return;
  c.capacity = capacity;
  // A capacity change moves every user's cap, so fatpipes traverse too.
  mark_cnst_dirty(cnst, /*need_traverse=*/true);
}

double MaxMinSystem::capacity(CnstId cnst) const { return cnsts_.at(static_cast<size_t>(cnst)).capacity; }

void MaxMinSystem::set_weight(VarId var, double weight) {
  if (weight < 0)
    throw xbt::InvalidArgument("variable weight must be non-negative");
  Variable& v = vars_.at(static_cast<size_t>(var));
  if (v.weight == weight)
    return;
  v.weight = weight;
  if (v.alive)
    mark_var_dirty(var);
}

double MaxMinSystem::weight(VarId var) const { return vars_.at(static_cast<size_t>(var)).weight; }

void MaxMinSystem::set_bound(VarId var, double bound) {
  Variable& v = vars_.at(static_cast<size_t>(var));
  if (v.bound == bound)
    return;
  v.bound = bound;
  if (v.alive)
    mark_var_dirty(var);
}

double MaxMinSystem::bound(VarId var) const { return vars_.at(static_cast<size_t>(var)).bound; }

double MaxMinSystem::value(VarId var) const { return vars_.at(static_cast<size_t>(var)).value; }

double MaxMinSystem::usage(CnstId cnst) const {
  const Constraint& c = cnsts_.at(static_cast<size_t>(cnst));
  double total = 0;
  for (const Element& e : c.elems) {
    const double u = e.coeff * vars_[static_cast<size_t>(e.var)].value;
    total = c.shared ? total + u : std::max(total, u);
  }
  return total;
}

void MaxMinSystem::solve() {
  if (full_solve_pending_) {
    solve_full();
    return;
  }
  if (dirty_vars_.empty() && dirty_cnsts_.empty()) {
    changed_vars_.clear();
    return;
  }

  // Transitive closure of the dirty seeds over the variable-constraint graph:
  // the union of the connected components whose allocation can have changed.
  // Fatpipe constraints cap each user individually and do not couple them, so
  // they do not propagate the closure var -> fatpipe -> other vars: they are
  // included cap-only (traversed only when themselves dirty). This keeps a
  // shared backbone fatpipe from merging every flow into one component.
  affected_vars_.clear();
  affected_cnsts_.clear();
  traverse_cnst_.clear();
  auto add_var = [&](VarId v) {
    if (!var_in_set_[static_cast<size_t>(v)] && vars_[static_cast<size_t>(v)].alive) {
      var_in_set_[static_cast<size_t>(v)] = 1;
      affected_vars_.push_back(v);
    }
  };
  auto add_cnst = [&](CnstId c, bool traverse) {
    if (!cnst_in_set_[static_cast<size_t>(c)]) {
      cnst_in_set_[static_cast<size_t>(c)] = 1;
      affected_cnsts_.push_back(c);
      traverse_cnst_.push_back(traverse ? 1 : 0);
    }
  };
  // Seeds first: a capacity-dirty fatpipe must reach all its users, so it is
  // added traversable before any cap-only inclusion could shadow it. A
  // membership-dirty fatpipe stays cap-only — adding/removing one user does
  // not move the others' caps.
  for (CnstId c : dirty_cnsts_)
    add_cnst(c, cnst_dirty_traverse_[static_cast<size_t>(c)] != 0);
  for (VarId v : dirty_vars_)
    add_var(v);
  size_t vi = 0, ci = 0;
  while (vi < affected_vars_.size() || ci < affected_cnsts_.size()) {
    if (vi < affected_vars_.size()) {
      const Variable& v = vars_[static_cast<size_t>(affected_vars_[vi++])];
      for (CnstId c : v.cnsts)
        add_cnst(c, cnsts_[static_cast<size_t>(c)].shared);
    } else {
      if (traverse_cnst_[ci]) {
        const Constraint& c = cnsts_[static_cast<size_t>(affected_cnsts_[ci])];
        for (const Element& e : c.elems)
          add_var(e.var);
      }
      ++ci;
    }
  }

  for (VarId v : dirty_vars_)
    var_dirty_[static_cast<size_t>(v)] = 0;
  dirty_vars_.clear();
  for (CnstId c : dirty_cnsts_)
    cnst_dirty_[static_cast<size_t>(c)] = 0;
  dirty_cnsts_.clear();

  for (VarId v : affected_vars_)
    var_in_set_[static_cast<size_t>(v)] = 0;
  for (CnstId c : affected_cnsts_)
    cnst_in_set_[static_cast<size_t>(c)] = 0;

  if (affected_vars_.size() * 2 > live_vars_) {
    solve_full();
    return;
  }
  solve_subset(affected_vars_, affected_cnsts_);
}

void MaxMinSystem::solve_full() {
  affected_vars_.clear();
  affected_cnsts_.clear();
  for (size_t i = 0; i < vars_.size(); ++i)
    if (vars_[i].alive)
      affected_vars_.push_back(static_cast<VarId>(i));
  for (size_t c = 0; c < cnsts_.size(); ++c)
    affected_cnsts_.push_back(static_cast<CnstId>(c));

  for (VarId v : dirty_vars_)
    var_dirty_[static_cast<size_t>(v)] = 0;
  dirty_vars_.clear();
  for (CnstId c : dirty_cnsts_)
    cnst_dirty_[static_cast<size_t>(c)] = 0;
  dirty_cnsts_.clear();
  full_solve_pending_ = false;

  ++stats_.full_solves;
  solve_subset(affected_vars_, affected_cnsts_);
}

void MaxMinSystem::solve_subset(const std::vector<VarId>& svars, const std::vector<CnstId>& scnsts) {
  ++stats_.solves;
  stats_.vars_visited += svars.size();

  // Working state, persistent across solves. `active_[i]` — still growing
  // (all-zero between solves). `effective_bound_[i]` folds the variable's own
  // bound together with its fatpipe caps.
  size_t n_active = 0;
  old_values_.resize(svars.size());
  for (size_t k = 0; k < svars.size(); ++k) {
    const size_t i = static_cast<size_t>(svars[k]);
    Variable& v = vars_[i];
    old_values_[k] = v.value;
    v.value = 0;
    effective_bound_[i] = kInf;
    if (v.weight <= 0)
      continue;
    active_[i] = 1;
    ++n_active;
    if (v.bound >= 0)
      effective_bound_[i] = v.bound;
  }

  // Fatpipe constraints translate to per-variable caps: cap / coeff.
  for (CnstId cid : scnsts) {
    const Constraint& c = cnsts_[static_cast<size_t>(cid)];
    remaining_[static_cast<size_t>(cid)] = c.capacity;
    if (c.shared)
      continue;
    for (const Element& e : c.elems) {
      const size_t i = static_cast<size_t>(e.var);
      if (active_[i])
        effective_bound_[i] = std::min(effective_bound_[i], c.capacity / e.coeff);
    }
  }

  while (n_active > 0) {
    // Growth room before the tightest shared constraint saturates.
    double delta = kInf;
    for (CnstId cid : scnsts) {
      const Constraint& cnst = cnsts_[static_cast<size_t>(cid)];
      if (!cnst.shared)
        continue;
      double denom = 0;
      for (const Element& e : cnst.elems) {
        const size_t i = static_cast<size_t>(e.var);
        if (active_[i])
          denom += e.coeff * vars_[i].weight;
      }
      if (denom > 0)
        delta = std::min(delta, std::max(0.0, remaining_[static_cast<size_t>(cid)]) / denom);
    }
    // Growth room before a variable bound is reached.
    for (VarId vid : svars) {
      const size_t i = static_cast<size_t>(vid);
      if (active_[i] && effective_bound_[i] < kInf)
        delta = std::min(delta, std::max(0.0, effective_bound_[i] - vars_[i].value) / vars_[i].weight);
    }

    if (delta == kInf) {
      // Unconstrained variables: give them the "infinite" rate and stop.
      for (VarId vid : svars) {
        const size_t i = static_cast<size_t>(vid);
        if (active_[i]) {
          vars_[i].value = kUnlimited;
          active_[i] = 0;
        }
      }
      break;
    }

    // Grow everyone, consume capacities.
    for (VarId vid : svars) {
      const size_t i = static_cast<size_t>(vid);
      if (active_[i])
        vars_[i].value += delta * vars_[i].weight;
    }
    for (CnstId cid : scnsts) {
      const Constraint& cnst = cnsts_[static_cast<size_t>(cid)];
      if (!cnst.shared)
        continue;
      double used = 0;
      for (const Element& e : cnst.elems) {
        const size_t i = static_cast<size_t>(e.var);
        if (active_[i])
          used += e.coeff * vars_[i].weight;
      }
      remaining_[static_cast<size_t>(cid)] -= delta * used;
    }

    // Freeze variables on saturated shared constraints.
    size_t frozen = 0;
    for (CnstId cid : scnsts) {
      const Constraint& cnst = cnsts_[static_cast<size_t>(cid)];
      if (!cnst.shared)
        continue;
      bool involved = false;
      for (const Element& e : cnst.elems)
        if (active_[static_cast<size_t>(e.var)]) {
          involved = true;
          break;
        }
      if (!involved)
        continue;
      if (remaining_[static_cast<size_t>(cid)] <= kEps * std::max(1.0, cnst.capacity)) {
        for (const Element& e : cnst.elems) {
          const size_t i = static_cast<size_t>(e.var);
          if (active_[i]) {
            active_[i] = 0;
            ++frozen;
          }
        }
      }
    }
    // Freeze variables that reached their (effective) bound.
    for (VarId vid : svars) {
      const size_t i = static_cast<size_t>(vid);
      if (active_[i] && effective_bound_[i] < kInf &&
          vars_[i].value >= effective_bound_[i] - kEps * std::max(1.0, effective_bound_[i])) {
        vars_[i].value = effective_bound_[i];
        active_[i] = 0;
        ++frozen;
      }
    }

    if (frozen == 0) {
      // delta chosen as an exact saturation point must freeze someone;
      // if numerical dust prevented it, force-freeze the tightest variable
      // to guarantee termination.
      for (VarId vid : svars) {
        const size_t i = static_cast<size_t>(vid);
        if (active_[i]) {
          active_[i] = 0;
          ++frozen;
          break;
        }
      }
    }
    n_active -= frozen;
  }

  changed_vars_.clear();
  for (size_t k = 0; k < svars.size(); ++k)
    if (vars_[static_cast<size_t>(svars[k])].value != old_values_[k])
      changed_vars_.push_back(svars[k]);
}

}  // namespace sg::core
