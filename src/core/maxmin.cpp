#include "core/maxmin.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "xbt/exception.hpp"

namespace sg::core {

namespace {
constexpr double kEps = 1e-9;
}

void MaxMinSystem::Constraint::compact(const std::vector<Variable>& vars) {
  if (dead_elems * 2 < elems.size())
    return;
  elems.erase(std::remove_if(elems.begin(), elems.end(),
                             [&](const Element& e) { return !vars[static_cast<size_t>(e.var)].alive; }),
              elems.end());
  dead_elems = 0;
}

MaxMinSystem::CnstId MaxMinSystem::new_constraint(double capacity, bool shared) {
  if (capacity < 0)
    throw xbt::InvalidArgument("constraint capacity must be non-negative");
  cnsts_.push_back({capacity, shared, {}, 0});
  return static_cast<CnstId>(cnsts_.size() - 1);
}

MaxMinSystem::VarId MaxMinSystem::new_variable(double weight, double bound) {
  if (weight < 0)
    throw xbt::InvalidArgument("variable weight must be non-negative");
  VarId id;
  if (!free_vars_.empty()) {
    id = free_vars_.back();
    free_vars_.pop_back();
    vars_[static_cast<size_t>(id)] = Variable{weight, bound, 0, true, {}, {}};
  } else {
    vars_.push_back(Variable{weight, bound, 0, true, {}, {}});
    id = static_cast<VarId>(vars_.size() - 1);
  }
  ++live_vars_;
  return id;
}

void MaxMinSystem::expand(CnstId cnst, VarId var, double coeff) {
  if (coeff <= 0)
    throw xbt::InvalidArgument("element coefficient must be positive");
  cnsts_.at(static_cast<size_t>(cnst)).elems.push_back({var, coeff});
  Variable& v = vars_.at(static_cast<size_t>(var));
  v.cnsts.push_back(cnst);
  v.coeffs.push_back(coeff);
}

void MaxMinSystem::release_variable(VarId var) {
  Variable& v = vars_.at(static_cast<size_t>(var));
  if (!v.alive)
    return;
  v.alive = false;
  v.value = 0;
  for (CnstId c : v.cnsts) {
    Constraint& cnst = cnsts_[static_cast<size_t>(c)];
    ++cnst.dead_elems;
    cnst.compact(vars_);
  }
  v.cnsts.clear();
  v.coeffs.clear();
  free_vars_.push_back(var);
  --live_vars_;
}

void MaxMinSystem::set_capacity(CnstId cnst, double capacity) {
  if (capacity < 0)
    throw xbt::InvalidArgument("constraint capacity must be non-negative");
  cnsts_.at(static_cast<size_t>(cnst)).capacity = capacity;
}

double MaxMinSystem::capacity(CnstId cnst) const { return cnsts_.at(static_cast<size_t>(cnst)).capacity; }

void MaxMinSystem::set_weight(VarId var, double weight) {
  if (weight < 0)
    throw xbt::InvalidArgument("variable weight must be non-negative");
  vars_.at(static_cast<size_t>(var)).weight = weight;
}

double MaxMinSystem::weight(VarId var) const { return vars_.at(static_cast<size_t>(var)).weight; }

void MaxMinSystem::set_bound(VarId var, double bound) { vars_.at(static_cast<size_t>(var)).bound = bound; }

double MaxMinSystem::bound(VarId var) const { return vars_.at(static_cast<size_t>(var)).bound; }

double MaxMinSystem::value(VarId var) const { return vars_.at(static_cast<size_t>(var)).value; }

double MaxMinSystem::usage(CnstId cnst) const {
  const Constraint& c = cnsts_.at(static_cast<size_t>(cnst));
  double total = 0;
  for (const Element& e : c.elems) {
    const Variable& v = vars_[static_cast<size_t>(e.var)];
    if (!v.alive)
      continue;
    const double u = e.coeff * v.value;
    total = c.shared ? total + u : std::max(total, u);
  }
  return total;
}

void MaxMinSystem::solve() {
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // Working state. `active[i]` — still growing. `effective_bound[i]` folds the
  // variable's own bound together with its fatpipe caps.
  const size_t nv = vars_.size();
  std::vector<char> active(nv, 0);
  std::vector<double> effective_bound(nv, kInf);
  size_t n_active = 0;

  for (size_t i = 0; i < nv; ++i) {
    Variable& v = vars_[i];
    v.value = 0;
    if (!v.alive || v.weight <= 0)
      continue;
    active[i] = 1;
    ++n_active;
    if (v.bound >= 0)
      effective_bound[i] = v.bound;
  }

  // Fatpipe constraints translate to per-variable caps: cap / coeff.
  for (const Constraint& c : cnsts_) {
    if (c.shared)
      continue;
    for (const Element& e : c.elems) {
      const size_t i = static_cast<size_t>(e.var);
      if (i < nv && active[i])
        effective_bound[i] = std::min(effective_bound[i], c.capacity / e.coeff);
    }
  }

  std::vector<double> remaining(cnsts_.size());
  for (size_t c = 0; c < cnsts_.size(); ++c)
    remaining[c] = cnsts_[c].capacity;

  while (n_active > 0) {
    // Growth room before the tightest shared constraint saturates.
    double delta = kInf;
    for (size_t c = 0; c < cnsts_.size(); ++c) {
      const Constraint& cnst = cnsts_[c];
      if (!cnst.shared)
        continue;
      double denom = 0;
      for (const Element& e : cnst.elems) {
        const size_t i = static_cast<size_t>(e.var);
        if (active[i])
          denom += e.coeff * vars_[i].weight;
      }
      if (denom > 0)
        delta = std::min(delta, std::max(0.0, remaining[c]) / denom);
    }
    // Growth room before a variable bound is reached.
    for (size_t i = 0; i < nv; ++i)
      if (active[i] && effective_bound[i] < kInf)
        delta = std::min(delta, std::max(0.0, effective_bound[i] - vars_[i].value) / vars_[i].weight);

    if (delta == kInf) {
      // Unconstrained variables: give them the "infinite" rate and stop.
      for (size_t i = 0; i < nv; ++i)
        if (active[i]) {
          vars_[i].value = kUnlimited;
          active[i] = 0;
        }
      break;
    }

    // Grow everyone, consume capacities.
    for (size_t i = 0; i < nv; ++i)
      if (active[i])
        vars_[i].value += delta * vars_[i].weight;
    for (size_t c = 0; c < cnsts_.size(); ++c) {
      const Constraint& cnst = cnsts_[c];
      if (!cnst.shared)
        continue;
      double used = 0;
      for (const Element& e : cnst.elems) {
        const size_t i = static_cast<size_t>(e.var);
        if (active[i])
          used += e.coeff * vars_[i].weight;
      }
      remaining[c] -= delta * used;
    }

    // Freeze variables on saturated shared constraints.
    size_t frozen = 0;
    for (size_t c = 0; c < cnsts_.size(); ++c) {
      const Constraint& cnst = cnsts_[c];
      if (!cnst.shared)
        continue;
      bool involved = false;
      for (const Element& e : cnst.elems)
        if (active[static_cast<size_t>(e.var)]) {
          involved = true;
          break;
        }
      if (!involved)
        continue;
      if (remaining[c] <= kEps * std::max(1.0, cnst.capacity)) {
        for (const Element& e : cnst.elems) {
          const size_t i = static_cast<size_t>(e.var);
          if (active[i]) {
            active[i] = 0;
            ++frozen;
          }
        }
      }
    }
    // Freeze variables that reached their (effective) bound.
    for (size_t i = 0; i < nv; ++i)
      if (active[i] && effective_bound[i] < kInf &&
          vars_[i].value >= effective_bound[i] - kEps * std::max(1.0, effective_bound[i])) {
        vars_[i].value = effective_bound[i];
        active[i] = 0;
        ++frozen;
      }

    if (frozen == 0) {
      // delta chosen as an exact saturation point must freeze someone;
      // if numerical dust prevented it, force-freeze the tightest variable
      // to guarantee termination.
      for (size_t i = 0; i < nv; ++i)
        if (active[i]) {
          active[i] = 0;
          ++frozen;
          break;
        }
    }
    n_active -= frozen;
  }
}

}  // namespace sg::core
