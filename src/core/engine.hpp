/// \file engine.hpp
/// The SURF simulation engine: owns the platform's resource state (speeds,
/// bandwidth, availability scaling, up/down state), the sharded MaxMin
/// system, and all running actions. Time advances from event to event: the
/// next action completion, the next latency-phase expiry, or the next trace
/// event (availability change or failure).
///
/// The simulation core is sharded along zone boundaries (engine/sharding,
/// on by default): each sealed zone gets its own MaxMinSystem shard and its
/// own completion/latency heaps, sized from the platform's shard map; the
/// backbone shard (0) holds WAN/gateway constraints and unzoned resources.
/// Actions carry a shard tag assigned at creation (the zone shard for
/// intra-zone activities, backbone otherwise), and a re-solve touches only
/// the dirty shards — so intra-zone per-event cost is independent of total
/// platform size. Cross-zone flows couple shards only through the solver's
/// linked-replica layer (see maxmin.hpp); results are identical to the
/// unsharded engine.
///
/// ## Threading model (engine/threads)
///
/// run_until() is phase-structured so the per-shard phases can fan out over
/// a ShardWorkers pool (engine/threads lanes, default 1; shard s always on
/// lane s % lanes). The serial spine — dirty-closure fixpoint, changed-id
/// aggregation, target-date selection, cross-shard finishes, event-log
/// merge — brackets two parallel phases:
///   * solve + rate refresh: uncoupled shard solves fan out (the coupled
///     group co-solves on the caller), then each lane refreshes the rates
///     and heap entries of its own shards' changed actions;
///   * advance: each lane applies its shards' due trace events and pops its
///     shards' due heap entries, finishing single-shard actions in place.
/// Anything whose solver variable spans shards is deferred to the serial
/// epilogue, which also commits released ids and merges the per-shard event
/// logs in fixed shard order. Every lane writes only its own shards' state,
/// and every cross-lane ordering decision is made serially — so the event
/// log is bitwise identical (and clocks exact) at every thread count.
///
/// Failure propagation is O(affected): when a resource dies, its victims are
/// found through the solver's element arena (constraint -> variables ->
/// actions) and a per-host sleep index, never by scanning the running set.
/// By default a transit communication survives the death of its endpoint
/// hosts (CM02 semantics); setting engine/kill-transit-comms makes a host's
/// death also fail every comm it is an endpoint of (L07-style), delivered
/// through a per-host endpoint index, still O(affected).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <queue>
#include <span>
#include <string>
#include <vector>

#include "core/action.hpp"
#include "core/maxmin.hpp"
#include "core/tourney.hpp"
#include "platform/platform.hpp"
#include "xbt/settings.hpp"

namespace sg::core {

struct ActionBlockPool;  // LIFO recycler for action allocations (engine.cpp)
class ShardWorkers;      // per-shard worker pool (workers.hpp)
struct PhaseProbe;       // per-lane occupancy sink (workers.hpp)

/// Typed config keys owned by the engine; declare_engine_config() registers
/// them (defaults in parentheses). engine/threads is seeded by SG_THREADS.
inline constexpr config::NumberKey kCfgTcpGamma{"network/tcp-gamma"};
inline constexpr config::NumberKey kCfgBandwidthFactor{"network/bandwidth-factor"};
inline constexpr config::NumberKey kCfgLoopbackBw{"network/loopback-bw"};
inline constexpr config::NumberKey kCfgLoopbackLat{"network/loopback-lat"};
inline constexpr config::FlagKey kCfgSharding{"engine/sharding"};
inline constexpr config::FlagKey kCfgKillTransitComms{"engine/kill-transit-comms"};
inline constexpr config::IntKey kCfgThreads{"engine/threads"};
inline constexpr config::FlagKey kCfgParallelActors{"engine/parallel-actors"};
inline constexpr config::FlagKey kCfgProfile{"engine/profile"};

/// What the engine reports after each step.
struct ActionEvent {
  ActionPtr action;
  bool failed = false;  ///< true when a resource died under the action
};

/// Zero-copy view of one run_until() round's events: an ordered sequence of
/// non-empty segments, each a span straight into a shard's fired buffer
/// (fixed shard order, the serial epilogue's events last) — nothing is
/// copied into a merge sink. Iterates like a flat forward range of
/// ActionEvent; valid until the next run_until()/step() call, exactly like
/// the span it replaces.
class StepLog {
public:
  class const_iterator {
  public:
    using value_type = ActionEvent;
    using reference = const ActionEvent&;
    using pointer = const ActionEvent*;
    using difference_type = std::ptrdiff_t;
    using iterator_category = std::forward_iterator_tag;

    reference operator*() const { return segs_[seg_][idx_]; }
    pointer operator->() const { return &segs_[seg_][idx_]; }
    const_iterator& operator++() {
      if (++idx_ == segs_[seg_].size()) {  // segments are never empty
        ++seg_;
        idx_ = 0;
      }
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator tmp = *this;
      ++*this;
      return tmp;
    }
    bool operator==(const const_iterator& o) const { return seg_ == o.seg_ && idx_ == o.idx_; }
    bool operator!=(const const_iterator& o) const { return !(*this == o); }

  private:
    friend class StepLog;
    const_iterator(const std::span<const ActionEvent>* segs, size_t seg)
        : segs_(segs), seg_(seg) {}
    const std::span<const ActionEvent>* segs_ = nullptr;
    size_t seg_ = 0;
    size_t idx_ = 0;
  };

  StepLog() = default;

  size_t size() const { return total_; }
  bool empty() const { return total_ == 0; }
  const_iterator begin() const { return {segs_, 0}; }
  const_iterator end() const { return {segs_, n_segs_}; }
  /// Random access across the segment boundaries (O(segments) walk — the
  /// log is typically one or two segments).
  const ActionEvent& operator[](size_t i) const {
    size_t seg = 0;
    while (i >= segs_[seg].size()) {
      i -= segs_[seg].size();
      ++seg;
    }
    return segs_[seg][i];
  }

private:
  friend class Engine;
  StepLog(const std::span<const ActionEvent>* segs, size_t n_segs, size_t total)
      : segs_(segs), n_segs_(n_segs), total_(total) {}
  const std::span<const ActionEvent>* segs_ = nullptr;
  size_t n_segs_ = 0;
  size_t total_ = 0;
};

class Engine {
public:
  /// The engine copies the (sealed) platform description and builds runtime
  /// resource state from it.
  explicit Engine(platform::Platform platform);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  double now() const { return now_; }
  const platform::Platform& platform() const { return platform_; }

  // -- starting activities ---------------------------------------------------
  // Each creator comes in two overloads: the name-less one keeps the default
  // display name ("exec", "comm", ...) without even constructing a
  // std::string — creation is the hot path of churn workloads — while the
  // named one stores the custom name in the shared side table (see
  // ActionBlockPool).

  /// Computation of `flops` on a host. Throws HostFailureException if the
  /// host is currently down.
  ActionPtr exec_start(int host, double flops, double priority = 1.0);
  ActionPtr exec_start(int host, double flops, double priority, const std::string& name);

  /// Point-to-point transfer of `bytes` from src to dst along the platform
  /// route. rate_limit (> 0) additionally caps the transfer rate (sender
  /// throttling). The TCP window cap gamma/(2*latency) applies automatically.
  ActionPtr comm_start(int src_host, int dst_host, double bytes, double rate_limit = -1.0);
  ActionPtr comm_start(int src_host, int dst_host, double bytes, double rate_limit,
                       const std::string& name);

  /// Parallel task (paper: "Parallel tasks" under resource sharing): a single
  /// activity consuming several CPUs and the links between them. The action
  /// completes when the common progress fraction reaches 1.
  /// flops[i] is the work of hosts[i]; bytes[i][j] the data sent i -> j.
  ActionPtr ptask_start(const std::vector<int>& hosts, const std::vector<double>& flops,
                        const std::vector<std::vector<double>>& bytes);
  ActionPtr ptask_start(const std::vector<int>& hosts, const std::vector<double>& flops,
                        const std::vector<std::vector<double>>& bytes, const std::string& name);

  /// Pure delay on a host (fails if the host dies while sleeping).
  ActionPtr sleep_start(int host, double duration);
  ActionPtr sleep_start(int host, double duration, const std::string& name);

  // -- time advance -----------------------------------------------------------
  /// Advance simulated time to the next event date, but no further than
  /// `deadline`, and return the completion/failure events that fired — in
  /// deterministic order (fixed shard order, stable intra-shard order; see
  /// the threading-model notes above). The returned view stays valid until
  /// the next run_until()/step() call. If nothing happens before `deadline`,
  /// time jumps there and the view is empty; if deadline is +inf and nothing
  /// is pending, time does not move. This is THE run-loop entry point;
  /// step() and next_event_time() below are compatibility wrappers around it.
  StepLog run_until(double deadline = std::numeric_limits<double>::infinity());

  /// Deprecated wrapper: run_until() copied into a fresh vector. Prefer
  /// run_until(), which does not allocate per call.
  std::vector<ActionEvent> step(double bound = std::numeric_limits<double>::infinity());

  /// Date of the next engine event (action completion / trace event), or
  /// +inf when nothing is pending; recomputes sharing first. Deprecated as a
  /// polling loop (run_until() subsumes it); still the introspection probe
  /// for "will anything ever happen" (the kernel's deadlock detector).
  double next_event_time();

  // -- resource state ----------------------------------------------------------
  bool host_is_on(int host) const { return hosts_[static_cast<size_t>(host)].on; }
  bool link_is_on(platform::LinkId link) const { return links_[static_cast<size_t>(link)].on; }
  /// Current effective speed (flop/s) including the availability trace.
  double host_speed(int host) const;
  double host_available_speed_fraction(int host) const { return hosts_[static_cast<size_t>(host)].scale; }
  double link_bandwidth(platform::LinkId link) const;
  /// Instantaneous load: sum of allocations on the resource's constraint.
  double host_load(int host);
  double link_load(platform::LinkId link);

  /// Force state changes (used by tests and by the fault-injection toolbox;
  /// trace events use the same path).
  void set_host_state(int host, bool on);
  void set_link_state(platform::LinkId link, bool on);
  void set_host_scale(int host, double scale);
  void set_link_scale(platform::LinkId link, double scale);

  // -- dynamic membership ------------------------------------------------------
  /// Join a new member host to a sealed cluster zone (see Platform::join_host)
  /// and bring its runtime resources up: constraints are created through the
  /// solver's id-recycling paths in the zone's existing shard, and the host's
  /// availability/state traces start ticking at now(). Returns the host index.
  int join_host(platform::ZoneId zone, const std::string& name = "", double speed_flops = -1.0);
  /// Graph-attach flavour (see the Platform overload); resources land on the
  /// backbone shard.
  int join_host(const platform::HostSpec& spec, platform::NodeId attach,
                const platform::LinkSpec& uplink);
  /// Structured teardown of a departing host: every activity on the host, its
  /// loopback, and its private links fails (delivered exactly once through
  /// the next run_until(); transit comms additionally die under
  /// engine/kill-transit-comms), the constraints are released for id reuse,
  /// and the platform marks the host "departed at t=now()". The host's trace
  /// chains keep ticking silently so a later rejoin resumes them in phase.
  void leave_host(int host);
  /// Structured bring-up of a returning host: presence flips back, fresh
  /// constraints are created (recycled ids) at the trace-correct capacity,
  /// and the resource observer fires (true, host, true) so the kernel can
  /// respawn restart-on-rejoin daemons.
  void rejoin_host(int host);
  bool host_present(int host) const { return platform_.host_present(host); }

  /// Number of actions still running.
  size_t running_action_count() const;

  /// Read-only view of the sharing system (tests and the memory-footprint
  /// bench metrics; the solver's arena doubles as the failure index).
  const ShardedMaxMin& sharing_system() const { return sys_; }

  /// Number of simulation shards (zones + backbone; 1 when engine/sharding
  /// is off or the platform has no zones).
  int shard_count() const { return static_cast<int>(shards_.size()); }
  /// Shard a host's resources (and its local activities) belong to.
  std::int32_t shard_of_host(int host) const { return hosts_[static_cast<size_t>(host)].shard; }
  /// Worker lanes actually used (engine/threads clamped to the shard count).
  int thread_count() const { return lanes_; }
  /// The engine's worker-lane pool, or null when thread_count() == 1. The
  /// kernel's parallel scheduling phase (engine/parallel-actors) fans actor
  /// resumes out over these same lanes — one pool, one generation barrier —
  /// rather than spinning up a second thread pool.
  ShardWorkers* workers() { return workers_.get(); }

  /// Observer invoked on every action state transition (viz/tracing hook).
  /// During run_until() the notifications are gathered per shard and fired
  /// from the serial epilogue, in event-log order.
  using ActionObserver = std::function<void(const Action&, ActionState /*old*/, ActionState /*new*/)>;
  void set_action_observer(ActionObserver obs) { observer_ = std::move(obs); }

  /// Observer invoked whenever a resource changes up/down state (the kernel
  /// uses it to kill/restart the actors living on a failed host).
  using ResourceObserver = std::function<void(bool /*is_host*/, int /*index*/, bool /*now_on*/)>;
  void set_resource_observer(ResourceObserver obs) { resource_observer_ = std::move(obs); }

  /// Cumulative phase-level profile of run_until() (engine/profile): wall
  /// nanoseconds per serial-spine phase, fan-out occupancy, and round/event
  /// counters. All zeros while profiling is off.
  struct PhaseStats {
    std::uint64_t rounds = 0;       ///< run_until() calls that did a full round
    std::uint64_t events = 0;       ///< events delivered through the step log
    std::uint64_t solve_ns = 0;     ///< share_resources: solve + rate refresh
    std::uint64_t pick_ns = 0;      ///< target-date pick + due-shard collection
    std::uint64_t advance_ns = 0;   ///< due-shard advance fan-out
    std::uint64_t epilogue_ns = 0;  ///< deferred ops + gather + notices
    std::uint64_t total_ns = 0;     ///< whole run_until() body
    std::uint64_t parallel_ns = 0;  ///< wall spent inside worker fan-outs
    std::vector<std::uint64_t> lane_busy_ns;  ///< busy time per lane, fan-outs only
    /// Fraction of the run_until() wall spent OUTSIDE parallel fan-outs —
    /// the Amdahl serial fraction the lane count cannot shrink.
    double serial_fraction() const {
      return total_ns > 0
                 ? 1.0 - static_cast<double>(parallel_ns) / static_cast<double>(total_ns)
                 : 0.0;
    }
  };
  /// Snapshot of the profile counters (cheap; see engine/profile).
  PhaseStats phase_stats() const;

private:
  friend class Action;

  /// Event ordering at equal dates, codified here and consumed only by
  /// advance_shard() (the regression suite pins it): within a step, trace
  /// events (availability/state flips) apply BEFORE heap events (latency
  /// expiries, completions) due at the same date — a resource dying exactly
  /// when an action would complete FAILS the action. Among trace events,
  /// (time, kind, index) is a total order; within the heaps, the latency
  /// heap wins date ties against the completion heap.
  static constexpr bool kTraceEventsBeforeCompletions = true;

  struct HostRes {
    ShardedMaxMin::CnstId cnst = -1;
    ShardedMaxMin::CnstId loopback = -1;  ///< lazily created
    std::int32_t shard = 0;  ///< zone shard (0: unzoned / sharding off)
    double scale = 1.0;
    bool on = true;
    /// Sleeps currently running on this host (swap-removed via
    /// Action::host_list_idx_): sleeps have no solver variable, so the arena
    /// cannot index them — this list keeps host-failure sweeps O(affected).
    std::vector<Action*> sleeps;
    /// Comms this host is an endpoint of, maintained only under
    /// engine/kill-transit-comms (src side indexed by host_list_idx_, dst
    /// side by peer_list_idx_) so a host death can fail its transit comms
    /// in O(affected).
    std::vector<Action*> comms;
  };
  struct LinkRes {
    ShardedMaxMin::CnstId cnst = -1;
    std::int32_t shard = 0;  ///< zone shard (0: unzoned / sharding off)
    double scale = 1.0;
    bool on = true;
  };
  struct TraceEvent {
    double time;
    enum class Kind { kHostAvail, kHostState, kLinkAvail, kLinkState } kind;
    int index;
    double value;
    /// Total order (time, kind, index) — see kTraceEventsBeforeCompletions.
    bool operator>(const TraceEvent& other) const {
      if (time != other.time)
        return time > other.time;
      if (kind != other.kind)
        return kind > other.kind;
      return index > other.index;
    }
  };

  /// Event min-heap in SoA layout: the 4-ary heap order lives in a dense
  /// array of dates, with the payload (stamp + ActionPtr) in a parallel
  /// array. Sift compares only touch the 8-byte dates — four children per
  /// cache line instead of two 32-byte entries — so the per-event heap
  /// traffic reads half the lines the old array-of-structs layout did; the
  /// 24-byte payloads move only when a compare decides a swap.
  ///
  /// Entries are never updated in place: rescheduling an action pushes a
  /// fresh entry and bumps the action's heap_stamp_, so older entries are
  /// recognized as stale and skipped when popped (lazy invalidation).
  /// Payloads hold a shared_ptr so a stale entry can never dangle.
  struct EventHeap {
    struct Payload {
      std::uint64_t stamp;
      ActionPtr action;
    };
    std::vector<double> dates;
    std::vector<Payload> payloads;
    /// Lower bound on the next *valid* entry's date (the root date, which a
    /// stale root can only understate; +inf when empty). The k-way shard
    /// scan reads only these cached heads — one dense pass, no payload or
    /// Action dereferences — and reaps just the winning heap.
    double head_lb = std::numeric_limits<double>::infinity();

    bool empty() const { return dates.empty(); }
    size_t size() const { return dates.size(); }
    double top_date() const { return dates.front(); }
    Payload& top() { return payloads.front(); }
    void push(double date, std::uint64_t stamp, ActionPtr action);
    void pop_front();
    void sift_down(size_t hole);
    void rebuild();
  };

  /// Per-shard event state: one far-future completion heap and one tiny
  /// near-term latency heap per shard, plus their stale-entry counts. An
  /// intra-zone event pushes/pops only in its own shard's (per-zone-sized,
  /// cache-resident) heaps.
  struct ShardEvents {
    EventHeap completion;
    size_t completion_stale = 0;
    EventHeap latency;
    size_t latency_stale = 0;
  };

  /// Cross-shard work a lane discovered during the parallel advance but must
  /// not perform itself (the action's solver variable spans shards, or the
  /// action belongs to another lane's shard). Processed serially, in (shard,
  /// discovery) order — failures first, honouring the tie-break above.
  struct DeferredOp {
    enum class Kind : std::uint8_t { kLatencyExpiry, kCompletion, kFailure };
    Kind kind;
    ActionPtr action;
  };

  /// One observer notification recorded during a parallel phase and fired
  /// from the serial epilogue (observers are user code: they must never run
  /// on a worker lane, nor concurrently with engine mutation).
  struct Notice {
    ActionPtr action;  ///< action transition when set; resource notice otherwise
    ActionState old_state = ActionState::kRunning;
    ActionState new_state = ActionState::kRunning;
    bool res_is_host = false;
    int res_index = -1;
    bool res_on = false;
  };

  /// Everything the engine keeps per shard. One lane owns a shard's state
  /// for the duration of a parallel phase; the alignment keeps two shards'
  /// hot heads off the same cache line.
  struct alignas(64) ShardState {
    ShardEvents events;
    /// Slot table of this shard's running actions (nullptr = free slot,
    /// recycled LIFO). Slots are never swapped, so finishing an action
    /// touches no other action's cache lines.
    std::vector<ActionPtr> running;
    std::vector<size_t> free_slots;
    size_t running_count = 0;
    /// Block recycler + name side table for this shard's actions: each lane
    /// allocates and frees only through its own shards' pools.
    std::shared_ptr<ActionBlockPool> pool;
    /// This shard's resources' availability/state trace events.
    std::priority_queue<TraceEvent, std::vector<TraceEvent>, std::greater<>> traces;
    // -- per-step scratch, written only by this shard's lane ---------------
    std::vector<ActionEvent> fired;      ///< events finished in this shard
    std::vector<DeferredOp> deferred;    ///< cross-shard ops for the epilogue
    std::vector<Notice> notices;         ///< observer calls to fire serially
    std::vector<ShardedMaxMin::VarId> released;  ///< ids for commit_released
    /// This shard is already on its lane's dirty list (tournament leaves to
    /// refresh). Written only by the shard's own lane or the maestro.
    bool heads_dirty = false;
  };

  /// Pop stale entries off a heap's top; returns its next valid date (kInf
  /// when empty) and leaves head_lb exact. O(stale + 1).
  static double reap_heap_top(EventHeap& heap, size_t& stale);
  /// Earliest valid entry within ONE shard's heaps (latency wins ties).
  static double shard_event_source(ShardEvents& se, EventHeap** out_heap, size_t** out_stale);
  /// Erase every stale completion-heap entry and restore the heap order.
  void compact_completion_heap(ShardEvents& se);

  /// Shard whose lane applies this trace event (the resource's shard).
  std::int32_t trace_shard(TraceEvent::Kind kind, int index) const;
  void schedule_trace_events();
  void schedule_next(const trace::Trace& trace, TraceEvent::Kind kind, int index, double after);
  /// Earliest pending trace date across shards (tournament tree over raw
  /// trace tops), clamped to >= now().
  double next_trace_time();

  /// Phase body for one shard: apply due trace events (FIRST — the
  /// tie-break), then pop due heap entries; finish what is shard-local,
  /// defer the rest.
  void advance_shard(int shard, double target, double eps);
  /// Apply a trace event inside its shard's lane.
  void apply_trace_event(int shard, const TraceEvent& ev);
  /// Up/down transition, running in the resource's shard's lane: adjust
  /// capacity and, on death, deliver failures through the index. Victims
  /// whose state is shard-local are finished in place; others are deferred.
  void apply_host_state_sharded(int shard, int host, bool on);
  void apply_link_state_sharded(int shard, platform::LinkId link, bool on);
  /// Fail every action with a live solver variable on `cnst` (which lives in
  /// `shard`). O(degree): victims come from the solver's element arena.
  void fail_constraint_sharded(int shard, ShardedMaxMin::CnstId cnst);
  /// Finish one failure victim: in place when shard-local, deferred else.
  void fail_one_sharded(int shard, ActionPtr action);
  /// Finish an action whose entire state (slot, heaps, var, lists) lives in
  /// `shard` — safe inside that shard's lane. Events/notices/released ids go
  /// to the shard's gather buffers; the global id is committed serially.
  void finish_action_local(int shard, ActionPtr action, ActionState final_state);
  /// Serial: process the deferred cross-shard ops in fixed order (only the
  /// shards advanced this round can hold any).
  void process_deferred();
  /// Serial: commit released ids, publish the non-empty per-shard fired
  /// lists (fixed shard order, the epilogue's list last) as this round's
  /// zero-copy log segments, fire notices. Empty lists are skipped outright
  /// — a zero-event round publishes nothing.
  void gather_step_results();
  /// Drop the previous round's log: clear exactly the published buffers and
  /// the segment table. run_until() calls it before anything else.
  void release_step_log();
  /// Note that `shard`'s event heads (heap tops / trace top) may have
  /// changed; sync_head_trees() refreshes the tournament leaves lazily.
  /// Safe from the shard's own lane: each lane appends to its own list.
  void mark_heads_dirty(int shard);
  /// Serial: refresh the tournament leaves of every dirty shard.
  void sync_head_trees();

  /// Create runtime resource records (constraints, trace schedules) for every
  /// platform host/link the engine does not know yet — the shared bring-up
  /// tail of both join_host overloads. O(new resources).
  void adopt_new_resources();
  void refresh_host_capacity(int host);
  void refresh_link_capacity(platform::LinkId link);
  /// Serial-context (set_host_state / set_link_state) twins of the sharded
  /// appliers above: same failure delivery, but observers fire inline as
  /// each victim finishes — an observer may react to one failure by
  /// cancelling a not-yet-finished sibling (the reentrancy contract the
  /// explicit setters have always had).
  void apply_host_state(int host, bool on, std::vector<ActionEvent>& out);
  void apply_link_state(platform::LinkId link, bool on, std::vector<ActionEvent>& out);
  void fail_actions_on_constraint(ShardedMaxMin::CnstId cnst, std::vector<ActionEvent>& out);
  void fail_sleeps_on_host(int host, std::vector<ActionEvent>& out);
  void fail_endpoint_comms(int host, std::vector<ActionEvent>& out);
  /// Serial-context finish (cancel, deferred ops): handles cross-shard
  /// variables. With `out_notices` the state-transition notification is
  /// recorded there instead of firing inline.
  void finish_action(ActionPtr action, ActionState final_state, std::vector<ActionEvent>* out,
                     std::vector<Notice>* out_notices = nullptr);
  /// Register / swap-remove a comm in its endpoints' comm indexes.
  void endpoint_lists_add(const ActionPtr& action);
  void endpoint_list_remove(int host, std::uint32_t idx);
  ShardedMaxMin::CnstId loopback_constraint(int host);
  void notify(const Action& action, ActionState old_state, ActionState new_state);
  void fire_notice(const Notice& n);
  /// Bind a solver variable to its action so rate refreshes can find it.
  void bind_var(Action* action, ShardedMaxMin::VarId var);
  /// Register a freshly created action as running in its shard's slot table
  /// (the action's shard_ must already be set).
  void add_running(const ActionPtr& action);
  /// Store a custom display name in the action's shard's side table (no-op
  /// when `name` is the kind's default — the common case pays nothing).
  void set_action_name(Action* action, const std::string& name);
  /// Shared bodies of the creator overloads; a non-null name is applied
  /// before the creation notify() so observers already see it.
  ActionPtr exec_start_impl(int host, double flops, double priority, const std::string* name);
  ActionPtr comm_start_impl(int src_host, int dst_host, double bytes, double rate_limit,
                            const std::string* name);
  /// Re-solve sharing (incrementally — only components touched by a mutation
  /// are recomputed; uncoupled shards AND independent coupled groups fan out
  /// over the worker lanes), refresh the rates of the actions whose
  /// allocation changed, and reschedule exactly those in the completion
  /// heaps. Cheap no-op when nothing is dirty. `probe` (run_until's, or null
  /// from the introspection paths) collects fan-out occupancy.
  void share_resources(PhaseProbe* probe);
  /// Fold elapsed time into remaining_/latency_remaining_ using the rate
  /// that was in effect since the last sync. Must run before a rate change.
  void sync_progress(Action& a);
  /// Invalidate the action's current heap entry and push a fresh one at its
  /// completion date under current rates (no entry if that date is +inf).
  /// Assumes progress is already synced to now_.
  void schedule_completion(const ActionPtr& a);
  /// Mark the action's current heap entry (if any) stale via a stamp bump,
  /// keeping the stale-entry count for compaction accounting.
  void orphan_heap_entry(Action& a);
  /// Pop stale heap tops; returns the next valid completion date (kInf when
  /// none). O(stale + 1).
  double next_completion_date();
  /// Date at which the action will complete under current rates (kInf if
  /// suspended or starved). Assumes progress is synced to now_.
  double action_finish_date(const Action& a) const;

  platform::Platform platform_;
  ShardedMaxMin sys_;
  std::vector<HostRes> hosts_;
  std::vector<LinkRes> links_;
  /// Per-shard engine state (slots, heaps, pools, traces, gather buffers),
  /// indexed by Action::shard_ / the platform shard map.
  std::vector<ShardState> shards_;
  /// Action lookup by solver variable id, indexed by VarId (global across
  /// shards; nullptr when free). Shared between lanes, but every lane only
  /// reads/writes entries of variables homed in its own shards — cross-shard
  /// variables are never finished inside a parallel phase.
  std::vector<Action*> action_of_var_;
  /// Events produced outside run_until() (creation-time failures, explicit
  /// set_*_state, cancel): delivered by the next run_until() before time
  /// moves. Deliberately ONE global queue — it is only ever written from
  /// serialized contexts, and splitting it per shard would change the
  /// delivery order the unsharded engine established.
  std::vector<ActionEvent> pending_;
  std::vector<ActionEvent> events_;           ///< pending_ drain's returned storage
  std::vector<ActionEvent> deferred_events_;  ///< epilogue finishes, published last
  std::vector<Notice> deferred_notices_;
  /// The current round's zero-copy log: ordered non-empty segment views into
  /// the per-shard fired buffers (and deferred_events_ / events_), plus the
  /// ids of the shards whose buffers are published (-1 = not a shard buffer)
  /// so release_step_log() clears exactly those.
  std::vector<std::span<const ActionEvent>> log_segs_;
  std::vector<std::int32_t> log_owners_;
  size_t log_total_ = 0;
  /// Shards with a due trace or heap event this round, ascending — the
  /// advance fan-out and the epilogue iterate these instead of every shard.
  std::vector<std::int32_t> due_shards_;
  /// Per-lane scratch, cache-line separated: the shards whose event heads
  /// changed (tournament leaves to refresh) and the lane's slice of
  /// due_shards_ (bucketed by lane_of so each shard stays on its canonical
  /// lane even when few shards are due).
  struct alignas(64) LaneScratch {
    std::vector<std::int32_t> dirty;
    std::vector<std::int32_t> due;
  };
  std::vector<LaneScratch> lane_scratch_;
  /// Incremental target pick: tournament trees over the per-shard event
  /// heads. heap_tree_ has two leaves per shard (2s = latency head bound,
  /// 2s+1 = completion head bound — the leaf order IS the tie-break: lower
  /// shard first, latency beats completion at equal dates); trace_tree_ one
  /// leaf per shard holding the raw (unclamped) next trace date.
  TourneyTree heap_tree_;
  TourneyTree trace_tree_;
  bool profile_ = false;               ///< engine/profile snapshot
  std::unique_ptr<PhaseProbe> probe_;  ///< occupancy sink, only when profiling
  PhaseStats pstats_;
  std::unique_ptr<ShardWorkers> workers_;  ///< null when lanes_ == 1
  int lanes_ = 1;
  ActionObserver observer_;
  ResourceObserver resource_observer_;
  double now_ = 0;

  // model parameters (snapshotted from the config registry at construction)
  double tcp_gamma_;
  double bandwidth_factor_;
  double loopback_bw_;
  double loopback_lat_;
  bool kill_transit_comms_ = false;  ///< engine/kill-transit-comms snapshot
};

/// Register the engine's model parameters in the config registry with their
/// defaults (idempotent; engine construction calls it too).
void declare_engine_config();

}  // namespace sg::core
