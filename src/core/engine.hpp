/// \file engine.hpp
/// The SURF simulation engine: owns the platform's resource state (speeds,
/// bandwidth, availability scaling, up/down state), the sharded MaxMin
/// system, and all running actions. Time advances from event to event: the
/// next action completion, the next latency-phase expiry, or the next trace
/// event (availability change or failure).
///
/// The simulation core is sharded along zone boundaries (engine/sharding,
/// on by default): each sealed zone gets its own MaxMinSystem shard and its
/// own completion/latency heaps, sized from the platform's shard map; the
/// backbone shard (0) holds WAN/gateway constraints and unzoned resources.
/// Actions carry a shard tag assigned at creation (the zone shard for
/// intra-zone activities, backbone otherwise), step() takes a k-way min
/// over the shard heap heads, and a re-solve touches only the dirty shards
/// — so intra-zone per-event cost is independent of total platform size.
/// Cross-zone flows couple shards only through the solver's linked-replica
/// layer (see maxmin.hpp); results are identical to the unsharded engine.
///
/// Failure propagation is O(affected): when a resource dies, its victims are
/// found through the solver's element arena (constraint -> variables ->
/// actions) and a per-host sleep index, never by scanning the running set.
/// By default a transit communication survives the death of its endpoint
/// hosts (CM02 semantics); setting engine/kill-transit-comms makes a host's
/// death also fail every comm it is an endpoint of (L07-style), delivered
/// through a per-host endpoint index, still O(affected).
#pragma once

#include <functional>
#include <limits>
#include <queue>
#include <string>
#include <vector>

#include "core/action.hpp"
#include "core/maxmin.hpp"
#include "platform/platform.hpp"

namespace sg::core {

struct ActionBlockPool;  // LIFO recycler for action allocations (engine.cpp)

/// What the engine reports after each step.
struct ActionEvent {
  ActionPtr action;
  bool failed = false;  ///< true when a resource died under the action
};

class Engine {
public:
  /// The engine copies the (sealed) platform description and builds runtime
  /// resource state from it.
  explicit Engine(platform::Platform platform);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;
  ~Engine();

  double now() const { return now_; }
  const platform::Platform& platform() const { return platform_; }

  // -- starting activities ---------------------------------------------------
  // Each creator comes in two overloads: the name-less one keeps the default
  // display name ("exec", "comm", ...) without even constructing a
  // std::string — creation is the hot path of churn workloads — while the
  // named one stores the custom name in the shared side table (see
  // ActionBlockPool).

  /// Computation of `flops` on a host. Throws HostFailureException if the
  /// host is currently down.
  ActionPtr exec_start(int host, double flops, double priority = 1.0);
  ActionPtr exec_start(int host, double flops, double priority, const std::string& name);

  /// Point-to-point transfer of `bytes` from src to dst along the platform
  /// route. rate_limit (> 0) additionally caps the transfer rate (sender
  /// throttling). The TCP window cap gamma/(2*latency) applies automatically.
  ActionPtr comm_start(int src_host, int dst_host, double bytes, double rate_limit = -1.0);
  ActionPtr comm_start(int src_host, int dst_host, double bytes, double rate_limit,
                       const std::string& name);

  /// Parallel task (paper: "Parallel tasks" under resource sharing): a single
  /// activity consuming several CPUs and the links between them. The action
  /// completes when the common progress fraction reaches 1.
  /// flops[i] is the work of hosts[i]; bytes[i][j] the data sent i -> j.
  ActionPtr ptask_start(const std::vector<int>& hosts, const std::vector<double>& flops,
                        const std::vector<std::vector<double>>& bytes);
  ActionPtr ptask_start(const std::vector<int>& hosts, const std::vector<double>& flops,
                        const std::vector<std::vector<double>>& bytes, const std::string& name);

  /// Pure delay on a host (fails if the host dies while sleeping).
  ActionPtr sleep_start(int host, double duration);
  ActionPtr sleep_start(int host, double duration, const std::string& name);

  // -- time advance -----------------------------------------------------------
  /// Date of the next engine event (action completion / trace event), or
  /// +inf when nothing is pending. Recomputes sharing first.
  double next_event_time();

  /// Advance simulated time up to `bound` (default: to the next event).
  /// Returns the events (completions/failures) that fired; `now()` is updated.
  /// If nothing happens before `bound`, time jumps to `bound` and the vector
  /// is empty. If bound is +inf and nothing is pending, time does not move.
  std::vector<ActionEvent> step(double bound = std::numeric_limits<double>::infinity());

  // -- resource state ----------------------------------------------------------
  bool host_is_on(int host) const { return hosts_[static_cast<size_t>(host)].on; }
  bool link_is_on(platform::LinkId link) const { return links_[static_cast<size_t>(link)].on; }
  /// Current effective speed (flop/s) including the availability trace.
  double host_speed(int host) const;
  double host_available_speed_fraction(int host) const { return hosts_[static_cast<size_t>(host)].scale; }
  double link_bandwidth(platform::LinkId link) const;
  /// Instantaneous load: sum of allocations on the resource's constraint.
  double host_load(int host);
  double link_load(platform::LinkId link);

  /// Force state changes (used by tests and by the fault-injection toolbox;
  /// trace events use the same path).
  void set_host_state(int host, bool on);
  void set_link_state(platform::LinkId link, bool on);
  void set_host_scale(int host, double scale);
  void set_link_scale(platform::LinkId link, double scale);

  /// Number of actions still running.
  size_t running_action_count() const { return running_count_; }

  /// Read-only view of the sharing system (tests and the memory-footprint
  /// bench metrics; the solver's arena doubles as the failure index).
  const ShardedMaxMin& sharing_system() const { return sys_; }

  /// Number of simulation shards (zones + backbone; 1 when engine/sharding
  /// is off or the platform has no zones).
  int shard_count() const { return static_cast<int>(shard_events_.size()); }
  /// Shard a host's resources (and its local activities) belong to.
  std::int32_t shard_of_host(int host) const { return hosts_[static_cast<size_t>(host)].shard; }

  /// Observer invoked on every action state transition (viz/tracing hook).
  using ActionObserver = std::function<void(const Action&, ActionState /*old*/, ActionState /*new*/)>;
  void set_action_observer(ActionObserver obs) { observer_ = std::move(obs); }

  /// Observer invoked whenever a resource changes up/down state (the kernel
  /// uses it to kill/restart the actors living on a failed host).
  using ResourceObserver = std::function<void(bool /*is_host*/, int /*index*/, bool /*now_on*/)>;
  void set_resource_observer(ResourceObserver obs) { resource_observer_ = std::move(obs); }

private:
  friend class Action;

  struct HostRes {
    ShardedMaxMin::CnstId cnst = -1;
    ShardedMaxMin::CnstId loopback = -1;  ///< lazily created
    std::int32_t shard = 0;  ///< zone shard (0: unzoned / sharding off)
    double scale = 1.0;
    bool on = true;
    /// Sleeps currently running on this host (swap-removed via
    /// Action::host_list_idx_): sleeps have no solver variable, so the arena
    /// cannot index them — this list keeps host-failure sweeps O(affected).
    std::vector<Action*> sleeps;
    /// Comms this host is an endpoint of, maintained only under
    /// engine/kill-transit-comms (src side indexed by host_list_idx_, dst
    /// side by peer_list_idx_) so a host death can fail its transit comms
    /// in O(affected).
    std::vector<Action*> comms;
  };
  struct LinkRes {
    ShardedMaxMin::CnstId cnst = -1;
    double scale = 1.0;
    bool on = true;
  };
  struct TraceEvent {
    double time;
    enum class Kind { kHostAvail, kHostState, kLinkAvail, kLinkState } kind;
    int index;
    double value;
    bool operator>(const TraceEvent& other) const { return time > other.time; }
  };

  /// Event min-heap in SoA layout: the 4-ary heap order lives in a dense
  /// array of dates, with the payload (stamp + ActionPtr) in a parallel
  /// array. Sift compares only touch the 8-byte dates — four children per
  /// cache line instead of two 32-byte entries — so the per-event heap
  /// traffic reads half the lines the old array-of-structs layout did; the
  /// 24-byte payloads move only when a compare decides a swap.
  ///
  /// Entries are never updated in place: rescheduling an action pushes a
  /// fresh entry and bumps the action's heap_stamp_, so older entries are
  /// recognized as stale and skipped when popped (lazy invalidation).
  /// Payloads hold a shared_ptr so a stale entry can never dangle.
  struct EventHeap {
    struct Payload {
      std::uint64_t stamp;
      ActionPtr action;
    };
    std::vector<double> dates;
    std::vector<Payload> payloads;
    /// Lower bound on the next *valid* entry's date (the root date, which a
    /// stale root can only understate; +inf when empty). The k-way shard
    /// scan reads only these cached heads — one dense pass, no payload or
    /// Action dereferences — and reaps just the winning heap.
    double head_lb = std::numeric_limits<double>::infinity();

    bool empty() const { return dates.empty(); }
    size_t size() const { return dates.size(); }
    double top_date() const { return dates.front(); }
    Payload& top() { return payloads.front(); }
    void push(double date, std::uint64_t stamp, ActionPtr action);
    void pop_front();
    void sift_down(size_t hole);
    void rebuild();
  };

  /// Per-shard event state: one far-future completion heap and one tiny
  /// near-term latency heap per shard, plus their stale-entry counts. An
  /// intra-zone event pushes/pops only in its own shard's (per-zone-sized,
  /// cache-resident) heaps; step() takes a k-way min over the shard heads.
  struct ShardEvents {
    EventHeap completion;
    size_t completion_stale = 0;
    EventHeap latency;
    size_t latency_stale = 0;
  };

  /// Pop stale entries off a heap's top; returns its next valid date (kInf
  /// when empty) and leaves head_lb exact. O(stale + 1).
  static double reap_heap_top(EventHeap& heap, size_t& stale);
  /// Earliest valid entry across every shard heap: scan the cached head
  /// bounds, reap only the apparent winner, rescan if the reap revealed a
  /// stale head. Returns the date (kInf when all empty); *out names the
  /// winning heap (nullptr when none).
  double next_event_source(EventHeap** out_heap, size_t** out_stale);
  /// Erase every stale completion-heap entry and restore the heap order.
  void compact_completion_heap(ShardEvents& se);

  void schedule_trace_events();
  void schedule_next(const trace::Trace& trace, TraceEvent::Kind kind, int index, double after);
  void apply_trace_event(const TraceEvent& ev, std::vector<ActionEvent>& out);
  /// Shared up/down transition logic (trace events and set_*_state): adjust
  /// capacity and, on death, deliver failures through the index. O(affected).
  void apply_host_state(int host, bool on, std::vector<ActionEvent>& out);
  void apply_link_state(platform::LinkId link, bool on, std::vector<ActionEvent>& out);
  void refresh_host_capacity(int host);
  void refresh_link_capacity(platform::LinkId link);
  void finish_action(ActionPtr action, ActionState final_state, std::vector<ActionEvent>* out);
  /// Fail every action with a live solver variable on `cnst`. O(degree of
  /// cnst): victims come from the solver's element arena, not from a scan of
  /// the running set. Safe against duplicate elements and against the same
  /// action spanning several failed constraints (each action emits exactly
  /// one failure event).
  void fail_actions_on_constraint(ShardedMaxMin::CnstId cnst, std::vector<ActionEvent>& out);
  /// Fail the sleeps of a dying host via its sleep index. O(affected).
  void fail_sleeps_on_host(int host, std::vector<ActionEvent>& out);
  /// Fail the comms a dying host is an endpoint of (engine/kill-transit-
  /// comms only), via the per-host endpoint index. O(affected).
  void fail_endpoint_comms(int host, std::vector<ActionEvent>& out);
  /// Register / swap-remove a comm in its endpoints' comm indexes.
  void endpoint_lists_add(const ActionPtr& action);
  void endpoint_list_remove(int host, std::uint32_t idx);
  ShardedMaxMin::CnstId loopback_constraint(int host);
  void notify(const Action& action, ActionState old_state, ActionState new_state);
  /// Bind a solver variable to its action so rate refreshes can find it.
  void bind_var(Action* action, ShardedMaxMin::VarId var);
  /// Register a freshly created action as running (sets its running_ index).
  void add_running(const ActionPtr& action);
  /// Store a custom display name in the side table (no-op when `name` is the
  /// kind's default — the common case pays nothing).
  void set_action_name(Action* action, const std::string& name);
  /// Shared bodies of the creator overloads; a non-null name is applied
  /// before the creation notify() so observers already see it.
  ActionPtr exec_start_impl(int host, double flops, double priority, const std::string* name);
  ActionPtr comm_start_impl(int src_host, int dst_host, double bytes, double rate_limit,
                            const std::string* name);
  /// Re-solve sharing (incrementally — only components touched by a mutation
  /// are recomputed), refresh the rates of the actions whose allocation
  /// changed, and reschedule exactly those in the completion heap. Cheap
  /// no-op when nothing is dirty.
  void share_resources();
  /// Fold elapsed time into remaining_/latency_remaining_ using the rate
  /// that was in effect since the last sync. Must run before a rate change.
  void sync_progress(Action& a);
  /// Invalidate the action's current heap entry and push a fresh one at its
  /// completion date under current rates (no entry if that date is +inf).
  /// Assumes progress is already synced to now_.
  void schedule_completion(const ActionPtr& a);
  /// Mark the action's current heap entry (if any) stale via a stamp bump,
  /// keeping the stale-entry count for compaction accounting.
  void orphan_heap_entry(Action& a);
  /// Pop stale heap tops; returns the next valid completion date (kInf when
  /// none). O(stale + 1).
  double next_completion_date();
  /// Date at which the action will complete under current rates (kInf if
  /// suspended or starved). Assumes progress is synced to now_.
  double action_finish_date(const Action& a) const;

  platform::Platform platform_;
  ShardedMaxMin sys_;
  std::vector<HostRes> hosts_;
  std::vector<LinkRes> links_;
  /// Block recycler + action-name side table behind make_action: held by
  /// shared_ptr because every action's control block co-owns it, so block
  /// deallocation and name lookup/erase stay safe even for an ActionPtr
  /// that outlives the engine.
  std::shared_ptr<ActionBlockPool> action_pool_;
  std::vector<Action*> action_of_var_;  ///< indexed by VarId; nullptr when free
  /// Slot table of running actions (nullptr = free slot, recycled LIFO).
  /// Slots are never swapped, so finishing an action touches no other
  /// action's cache lines; nothing iterates this table on the hot path.
  std::vector<ActionPtr> running_;
  std::vector<size_t> free_run_slots_;
  size_t running_count_ = 0;
  /// Per-shard event heaps, indexed by Action::shard_. The completion heap
  /// holds far-future events (completion dates of flowing actions, sleeps);
  /// the latency heap holds near-term latency-phase expiries (now + route
  /// latency) so they never bubble through — or re-sink the tails of — the
  /// big heap. Sharding bounds each completion heap by its zone's running
  /// set, so an intra-zone push/pop walks a heap sized by the zone, not by
  /// the platform.
  std::vector<ShardEvents> shard_events_;
  std::vector<ActionEvent> pending_;  ///< events produced outside step()
  std::priority_queue<TraceEvent, std::vector<TraceEvent>, std::greater<>> trace_events_;
  ActionObserver observer_;
  ResourceObserver resource_observer_;
  double now_ = 0;

  // model parameters (snapshotted from xbt::Config at construction)
  double tcp_gamma_;
  double bandwidth_factor_;
  double loopback_bw_;
  double loopback_lat_;
  bool kill_transit_comms_ = false;  ///< engine/kill-transit-comms snapshot
};

/// Register the engine's model parameters in the global config with their
/// defaults (idempotent; engine construction calls it too).
void declare_engine_config();

}  // namespace sg::core
