#include "platform/parser.hpp"

#include <fstream>
#include <map>
#include <sstream>

#include "xbt/exception.hpp"
#include "xbt/str.hpp"
#include "xbt/units.hpp"

namespace sg::platform {
namespace {

using sg::trace::Trace;
using sg::trace::TracePoint;

/// Inline trace syntax: "0 1.0;5 0.5;P:10"
Trace parse_inline_trace(const std::string& name, const std::string& spec) {
  std::vector<TracePoint> points;
  double periodicity = -1;
  for (const std::string& item : xbt::split(spec, ';', /*skip_empty=*/true)) {
    const std::string t = xbt::trim(item);
    if (xbt::starts_with(t, "P:")) {
      periodicity = std::stod(t.substr(2));
      continue;
    }
    auto tokens = xbt::split_ws(t);
    if (tokens.size() != 2)
      throw xbt::InvalidArgument("bad inline trace item: " + item);
    points.push_back({std::stod(tokens[0]), std::stod(tokens[1])});
  }
  return Trace(name, std::move(points), periodicity);
}

Trace parse_trace_ref(const std::string& name, const std::string& value) {
  if (value.find(' ') != std::string::npos || value.find(';') != std::string::npos)
    return parse_inline_trace(name, value);
  return Trace::load(value);
}

/// Extract "key:value" attributes from tokens[start..]; bare words are
/// returned through `flags`.
std::map<std::string, std::string> parse_attrs(const std::vector<std::string>& tokens, size_t start,
                                               std::vector<std::string>& flags) {
  std::map<std::string, std::string> attrs;
  for (size_t i = start; i < tokens.size(); ++i) {
    const size_t colon = tokens[i].find(':');
    if (colon == std::string::npos)
      flags.push_back(tokens[i]);
    else
      attrs[tokens[i].substr(0, colon)] = tokens[i].substr(colon + 1);
  }
  return attrs;
}

}  // namespace

Platform parse_platform(const std::string& text) {
  Platform p;
  std::istringstream in(text);
  std::string raw;
  int lineno = 0;

  // Re-join quoted attributes first (avail:"0 1;5 0.5") by scanning lines.
  while (std::getline(in, raw)) {
    ++lineno;
    std::string line = xbt::trim(raw);
    if (line.empty() || line[0] == '#')
      continue;

    // Handle quoted spans: replace spaces inside quotes with '\x01' so
    // whitespace tokenizing keeps them together, then restore.
    bool in_quote = false;
    for (char& c : line) {
      if (c == '"')
        in_quote = !in_quote;
      else if (in_quote && c == ' ')
        c = '\x01';
    }
    auto tokens = xbt::split_ws(line);
    for (std::string& t : tokens) {
      std::string fixed;
      for (char c : t)
        if (c == '\x01')
          fixed += ' ';
        else if (c != '"')
          fixed += c;
      t = fixed;
    }

    const std::string& kind = tokens[0];
    try {
      if (kind == "host") {
        if (tokens.size() < 2)
          throw xbt::InvalidArgument("host needs a name");
        std::vector<std::string> flags;
        auto attrs = parse_attrs(tokens, 2, flags);
        HostSpec spec;
        spec.name = tokens[1];
        if (attrs.count("speed"))
          spec.speed_flops = xbt::parse_speed(attrs["speed"]);
        if (attrs.count("avail"))
          spec.availability = parse_trace_ref(spec.name + ".avail", attrs["avail"]);
        if (attrs.count("state"))
          spec.state = parse_trace_ref(spec.name + ".state", attrs["state"]);
        p.add_host(spec);
      } else if (kind == "router") {
        if (tokens.size() < 2)
          throw xbt::InvalidArgument("router needs a name");
        p.add_router(tokens[1]);
      } else if (kind == "link") {
        if (tokens.size() < 2)
          throw xbt::InvalidArgument("link needs a name");
        std::vector<std::string> flags;
        auto attrs = parse_attrs(tokens, 2, flags);
        LinkSpec spec;
        spec.name = tokens[1];
        if (attrs.count("bw"))
          spec.bandwidth_Bps = xbt::parse_bandwidth(attrs["bw"]);
        if (attrs.count("lat"))
          spec.latency_s = xbt::parse_time(attrs["lat"]);
        if (attrs.count("avail"))
          spec.availability = parse_trace_ref(spec.name + ".avail", attrs["avail"]);
        if (attrs.count("state"))
          spec.state = parse_trace_ref(spec.name + ".state", attrs["state"]);
        for (const std::string& f : flags)
          if (f == "fatpipe")
            spec.policy = SharingPolicy::kFatpipe;
        p.add_link(spec);
      } else if (kind == "edge") {
        if (tokens.size() != 4)
          throw xbt::InvalidArgument("edge wants: edge <node> <node> <link>");
        auto a = p.node_by_name(tokens[1]);
        auto b = p.node_by_name(tokens[2]);
        auto l = p.link_by_name(tokens[3]);
        if (!a || !b || !l)
          throw xbt::InvalidArgument("edge references unknown node or link");
        p.add_edge(*a, *b, *l);
      } else if (kind == "route") {
        if (tokens.size() < 3)
          throw xbt::InvalidArgument("route wants: route <src> <dst> <links...>");
        auto src = p.node_by_name(tokens[1]);
        auto dst = p.node_by_name(tokens[2]);
        if (!src || !dst)
          throw xbt::InvalidArgument("route references unknown host");
        std::vector<LinkId> links;
        bool symmetric = true;
        for (size_t i = 3; i < tokens.size(); ++i) {
          if (tokens[i] == "oneway") {
            symmetric = false;
            continue;
          }
          auto l = p.link_by_name(tokens[i]);
          if (!l)
            throw xbt::InvalidArgument("route references unknown link: " + tokens[i]);
          links.push_back(*l);
        }
        p.add_route(*src, *dst, std::move(links), symmetric);
      } else {
        throw xbt::InvalidArgument("unknown directive: " + kind);
      }
    } catch (const xbt::Exception& e) {
      throw xbt::InvalidArgument("platform line " + std::to_string(lineno) + ": " + e.what());
    }
  }
  p.seal();
  return p;
}

Platform load_platform(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    throw xbt::InvalidArgument("cannot open platform file: " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  return parse_platform(buf.str());
}

std::string dump_platform(const Platform& p) {
  std::ostringstream out;
  for (size_t h = 0; h < p.host_count(); ++h) {
    const HostSpec& spec = p.host(static_cast<int>(h));
    out << "host " << spec.name << " speed:" << spec.speed_flops << "\n";
  }
  for (size_t n = 0; n < p.node_count(); ++n)
    if (!p.is_host(static_cast<NodeId>(n)))
      out << "router " << p.node_name(static_cast<NodeId>(n)) << "\n";
  for (size_t l = 0; l < p.link_count(); ++l) {
    const LinkSpec& spec = p.link(static_cast<LinkId>(l));
    out << "link " << spec.name << " bw:" << spec.bandwidth_Bps << " lat:" << spec.latency_s;
    if (spec.policy == SharingPolicy::kFatpipe)
      out << " fatpipe";
    out << "\n";
  }
  for (const auto& e : p.edges())
    out << "edge " << p.node_name(e.a) << " " << p.node_name(e.b) << " " << p.link(e.link).name << "\n";
  return out.str();
}

}  // namespace sg::platform
