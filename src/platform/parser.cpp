#include "platform/parser.hpp"

#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "xbt/exception.hpp"
#include "xbt/str.hpp"
#include "xbt/units.hpp"

namespace sg::platform {
namespace {

using sg::trace::Trace;
using sg::trace::TracePoint;

/// Inline trace syntax: "0 1.0;5 0.5;P:10"
Trace parse_inline_trace(const std::string& name, const std::string& spec) {
  std::vector<TracePoint> points;
  double periodicity = -1;
  for (const std::string& item : xbt::split(spec, ';', /*skip_empty=*/true)) {
    const std::string t = xbt::trim(item);
    if (xbt::starts_with(t, "P:")) {
      periodicity = std::stod(t.substr(2));
      continue;
    }
    auto tokens = xbt::split_ws(t);
    if (tokens.size() != 2)
      throw xbt::InvalidArgument("bad inline trace item: " + item);
    points.push_back({std::stod(tokens[0]), std::stod(tokens[1])});
  }
  return Trace(name, std::move(points), periodicity);
}

Trace parse_trace_ref(const std::string& name, const std::string& value) {
  if (value.find(' ') != std::string::npos || value.find(';') != std::string::npos)
    return parse_inline_trace(name, value);
  return Trace::load(value);
}

/// Extract "key:value" attributes from tokens[start..]; bare words are
/// returned through `flags`.
std::map<std::string, std::string> parse_attrs(const std::vector<std::string>& tokens, size_t start,
                                               std::vector<std::string>& flags) {
  std::map<std::string, std::string> attrs;
  for (size_t i = start; i < tokens.size(); ++i) {
    const size_t colon = tokens[i].find(':');
    if (colon == std::string::npos)
      flags.push_back(tokens[i]);
    else
      attrs[tokens[i].substr(0, colon)] = tokens[i].substr(colon + 1);
  }
  return attrs;
}

}  // namespace

Platform parse_platform(const std::string& text) {
  Platform p;
  std::istringstream in(text);
  std::string raw;
  int lineno = 0;

  // Re-join quoted attributes first (avail:"0 1;5 0.5") by scanning lines.
  while (std::getline(in, raw)) {
    ++lineno;
    std::string line = xbt::trim(raw);
    if (line.empty() || line[0] == '#')
      continue;

    // Handle quoted spans: replace spaces inside quotes with '\x01' so
    // whitespace tokenizing keeps them together, then restore.
    bool in_quote = false;
    for (char& c : line) {
      if (c == '"')
        in_quote = !in_quote;
      else if (in_quote && c == ' ')
        c = '\x01';
    }
    auto tokens = xbt::split_ws(line);
    for (std::string& t : tokens) {
      std::string fixed;
      for (char c : t)
        if (c == '\x01')
          fixed += ' ';
        else if (c != '"')
          fixed += c;
      t = fixed;
    }

    const std::string& kind = tokens[0];
    try {
      if (kind == "host") {
        if (tokens.size() < 2)
          throw xbt::InvalidArgument("host needs a name");
        std::vector<std::string> flags;
        auto attrs = parse_attrs(tokens, 2, flags);
        HostSpec spec;
        spec.name = tokens[1];
        if (attrs.count("speed"))
          spec.speed_flops = xbt::parse_speed(attrs["speed"]);
        if (attrs.count("avail"))
          spec.availability = parse_trace_ref(spec.name + ".avail", attrs["avail"]);
        if (attrs.count("state"))
          spec.state = parse_trace_ref(spec.name + ".state", attrs["state"]);
        if (attrs.count("churn"))
          spec.churn = parse_trace_ref(spec.name + ".churn", attrs["churn"]);
        p.add_host(spec);
      } else if (kind == "router") {
        if (tokens.size() < 2)
          throw xbt::InvalidArgument("router needs a name");
        p.add_router(tokens[1]);
      } else if (kind == "link") {
        if (tokens.size() < 2)
          throw xbt::InvalidArgument("link needs a name");
        std::vector<std::string> flags;
        auto attrs = parse_attrs(tokens, 2, flags);
        LinkSpec spec;
        spec.name = tokens[1];
        if (attrs.count("bw"))
          spec.bandwidth_Bps = xbt::parse_bandwidth(attrs["bw"]);
        if (attrs.count("lat"))
          spec.latency_s = xbt::parse_time(attrs["lat"]);
        if (attrs.count("avail"))
          spec.availability = parse_trace_ref(spec.name + ".avail", attrs["avail"]);
        if (attrs.count("state"))
          spec.state = parse_trace_ref(spec.name + ".state", attrs["state"]);
        for (const std::string& f : flags)
          if (f == "fatpipe")
            spec.policy = SharingPolicy::kFatpipe;
        p.add_link(spec);
      } else if (kind == "cluster") {
        if (tokens.size() < 2)
          throw xbt::InvalidArgument("cluster needs a name");
        std::vector<std::string> flags;
        auto attrs = parse_attrs(tokens, 2, flags);
        ClusterZoneSpec spec;
        spec.name = tokens[1];
        if (!attrs.count("hosts"))
          throw xbt::InvalidArgument("cluster " + spec.name + " needs hosts:<count>");
        try {
          spec.count = std::stoi(attrs["hosts"]);
        } catch (const std::exception&) {
          throw xbt::InvalidArgument("cluster " + spec.name + ": bad hosts count: " + attrs["hosts"]);
        }
        if (attrs.count("prefix"))
          spec.host_prefix = attrs["prefix"];
        if (attrs.count("speed"))
          spec.host_speed = xbt::parse_speed(attrs["speed"]);
        if (attrs.count("bw"))
          spec.link_bandwidth = xbt::parse_bandwidth(attrs["bw"]);
        if (attrs.count("lat"))
          spec.link_latency = xbt::parse_time(attrs["lat"]);
        spec.backbone_bandwidth = attrs.count("backbone") ? xbt::parse_bandwidth(attrs["backbone"]) : 0.0;
        if (attrs.count("blat"))
          spec.backbone_latency = xbt::parse_time(attrs["blat"]);
        for (const std::string& f : flags)
          if (f == "fatpipe")
            spec.backbone_fatpipe = true;
        // blat/fatpipe describe the backbone: accepting them without one
        // would silently simulate a different topology than the user wrote.
        if (spec.backbone_bandwidth <= 0 && (attrs.count("blat") || spec.backbone_fatpipe))
          throw xbt::InvalidArgument("cluster " + spec.name +
                                     ": blat/fatpipe need a backbone:<bandwidth>");
        p.add_cluster_zone(spec);
      } else if (kind == "edge") {
        if (tokens.size() != 4)
          throw xbt::InvalidArgument("edge wants: edge <node> <node> <link>");
        auto a = p.node_by_name(tokens[1]);
        auto b = p.node_by_name(tokens[2]);
        auto l = p.link_by_name(tokens[3]);
        if (!a || !b || !l)
          throw xbt::InvalidArgument("edge references unknown node or link");
        p.add_edge(*a, *b, *l);
      } else if (kind == "route") {
        if (tokens.size() < 3)
          throw xbt::InvalidArgument("route wants: route <src> <dst> <links...>");
        auto src = p.node_by_name(tokens[1]);
        auto dst = p.node_by_name(tokens[2]);
        if (!src || !dst)
          throw xbt::InvalidArgument("route references unknown host");
        std::vector<LinkId> links;
        bool symmetric = true;
        for (size_t i = 3; i < tokens.size(); ++i) {
          if (tokens[i] == "oneway") {
            symmetric = false;
            continue;
          }
          auto l = p.link_by_name(tokens[i]);
          if (!l)
            throw xbt::InvalidArgument("route references unknown link: " + tokens[i]);
          links.push_back(*l);
        }
        p.add_route(*src, *dst, std::move(links), symmetric);
      } else {
        throw xbt::InvalidArgument("unknown directive: " + kind);
      }
    } catch (const xbt::Exception& e) {
      throw xbt::InvalidArgument("platform line " + std::to_string(lineno) + ": " + e.what());
    }
  }
  p.seal();
  return p;
}

Platform load_platform(const std::string& path) {
  std::ifstream in(path);
  if (!in)
    throw xbt::InvalidArgument("cannot open platform file: " + path);
  std::stringstream buf;
  buf << in.rdbuf();
  return parse_platform(buf.str());
}

std::string dump_platform(const Platform& p) {
  // Cluster zones dump as one `cluster` directive each; the hosts, links,
  // routers and edges they own are implied by it and skipped below. Clusters
  // come first so that edges referencing their gateways parse. (Graph zones
  // are membership metadata with no textual form; they are not dumped.)
  std::ostringstream out;
  std::set<size_t> zone_hosts;
  std::set<size_t> zone_links;
  std::set<NodeId> zone_nodes;     ///< not dumped as host/router lines
  std::set<NodeId> zone_interior;  ///< hub + members: their edges are implied
  for (size_t z = 0; z < p.zone_count(); ++z) {
    const ZoneId zid = static_cast<ZoneId>(z);
    if (p.zone_kind(zid) != ZoneKind::kCluster)
      continue;
    const ClusterZoneSpec& spec = p.cluster_zone_spec(zid);
    out << "cluster " << spec.name << " hosts:" << spec.count;
    if (!spec.host_prefix.empty() && spec.host_prefix != spec.name)
      out << " prefix:" << spec.host_prefix;
    out << " speed:" << spec.host_speed << " bw:" << spec.link_bandwidth
        << " lat:" << spec.link_latency;
    if (spec.backbone_bandwidth > 0) {
      out << " backbone:" << spec.backbone_bandwidth << " blat:" << spec.backbone_latency;
      if (spec.backbone_fatpipe)
        out << " fatpipe";
    }
    out << "\n";
    const int first = p.zone_first_host(zid);
    for (int m = 0; m < spec.count; ++m) {
      zone_hosts.insert(static_cast<size_t>(first + m));
      const NodeId hn = p.host_node(first + m);
      zone_nodes.insert(hn);
      zone_interior.insert(hn);
      auto up = p.link_by_name(p.host(first + m).name + "-link");
      if (up)
        zone_links.insert(static_cast<size_t>(*up));
    }
    if (auto hub = p.node_by_name(spec.name + "-switch")) {
      zone_nodes.insert(*hub);
      // A hub that doubles as the gateway (no backbone) is the attach point:
      // ad-hoc WAN edges at it must still be dumped. Member edges are caught
      // by the member side either way.
      if (spec.backbone_bandwidth > 0)
        zone_interior.insert(*hub);
    }
    if (spec.backbone_bandwidth > 0) {
      zone_nodes.insert(p.zone_gateway(zid));
      if (auto bb = p.link_by_name(spec.name + "-backbone"))
        zone_links.insert(static_cast<size_t>(*bb));
    }
  }
  for (size_t h = 0; h < p.host_count(); ++h) {
    if (zone_hosts.count(h))
      continue;
    const HostSpec& spec = p.host(static_cast<int>(h));
    out << "host " << spec.name << " speed:" << spec.speed_flops << "\n";
  }
  for (size_t n = 0; n < p.node_count(); ++n)
    if (!p.is_host(static_cast<NodeId>(n)) && !zone_nodes.count(static_cast<NodeId>(n)))
      out << "router " << p.node_name(static_cast<NodeId>(n)) << "\n";
  for (size_t l = 0; l < p.link_count(); ++l) {
    if (zone_links.count(l))
      continue;
    const LinkSpec& spec = p.link(static_cast<LinkId>(l));
    out << "link " << spec.name << " bw:" << spec.bandwidth_Bps << " lat:" << spec.latency_s;
    if (spec.policy == SharingPolicy::kFatpipe)
      out << " fatpipe";
    out << "\n";
  }
  for (const auto& e : p.edges())
    if (!zone_interior.count(e.a) && !zone_interior.count(e.b))
      out << "edge " << p.node_name(e.a) << " " << p.node_name(e.b) << " " << p.link(e.link).name << "\n";
  return out.str();
}

}  // namespace sg::platform
