#include "platform/builders.hpp"

#include "xbt/str.hpp"

namespace sg::platform {

Platform make_cluster(const ClusterSpec& spec) {
  // Built on the cluster-zone routing rule: member-to-member routes are
  // composed in O(1) from the interned up/down segments, so every bench and
  // example using make_cluster inherits O(hosts) routing state for free.
  Platform p;
  ClusterZoneSpec zone;
  zone.name = spec.prefix;
  zone.count = spec.count;
  zone.host_speed = spec.host_speed;
  zone.link_bandwidth = spec.link_bandwidth;
  zone.link_latency = spec.link_latency;
  zone.backbone_bandwidth = spec.backbone_bandwidth;
  zone.backbone_latency = spec.backbone_latency;
  zone.backbone_fatpipe = spec.backbone_fatpipe;
  p.add_cluster_zone(zone);
  p.seal();
  return p;
}

Platform make_dumbbell(double speed, double bandwidth, double latency) {
  Platform p;
  const NodeId a = p.add_host("left", speed);
  const NodeId b = p.add_host("right", speed);
  const LinkId l = p.add_link("middle", bandwidth, latency);
  p.add_route(a, b, {l});
  p.seal();
  return p;
}

Platform make_client_server_lan(int n_clients, int n_servers, double client_speed, double server_speed,
                                double lan_bandwidth, double lan_latency) {
  Platform p;
  const NodeId hub = p.add_router("hub");
  const NodeId sw = p.add_router("switch");
  const NodeId router = p.add_router("router");

  // The hub segment is one shared medium: a single link that every client
  // shares, so concurrent client flows visibly interfere (paper's Gantt).
  const LinkId hub_seg = p.add_link("hub-segment", lan_bandwidth, lan_latency);
  const LinkId uplink = p.add_link("hub-router", lan_bandwidth * 2, lan_latency);
  const LinkId swlink = p.add_link("switch-router", lan_bandwidth * 4, lan_latency);
  p.add_edge(hub, router, uplink);
  p.add_edge(sw, router, swlink);

  for (int i = 0; i < n_clients; ++i) {
    const std::string name = xbt::format("client%d", i + 1);
    const NodeId h = p.add_host(name, client_speed);
    p.add_edge(h, hub, hub_seg);  // all clients share the hub segment
  }
  for (int i = 0; i < n_servers; ++i) {
    const std::string name = xbt::format("server%d", i + 1);
    const NodeId h = p.add_host(name, server_speed);
    // Switched ports: private link per server.
    const LinkId l = p.add_link(name + "-port", lan_bandwidth * 4, lan_latency);
    p.add_edge(h, sw, l);
  }
  p.seal();
  return p;
}

}  // namespace sg::platform
