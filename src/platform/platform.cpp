#include "platform/platform.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <queue>

#include "xbt/exception.hpp"

namespace sg::platform {

NodeId Platform::add_host(const HostSpec& spec) {
  if (sealed_)
    throw xbt::InvalidArgument("platform is sealed");
  if (node_by_name(spec.name))
    throw xbt::InvalidArgument("duplicate node name: " + spec.name);
  const NodeId id = static_cast<NodeId>(node_names_.size());
  node_names_.push_back(spec.name);
  nodes_.push_back({true, static_cast<int>(hosts_.size())});
  hosts_.push_back(spec);
  host_nodes_.push_back(id);
  return id;
}

NodeId Platform::add_host(const std::string& name, double speed_flops) {
  HostSpec spec;
  spec.name = name;
  spec.speed_flops = speed_flops;
  return add_host(spec);
}

NodeId Platform::add_router(const std::string& name) {
  if (sealed_)
    throw xbt::InvalidArgument("platform is sealed");
  if (node_by_name(name))
    throw xbt::InvalidArgument("duplicate node name: " + name);
  const NodeId id = static_cast<NodeId>(node_names_.size());
  node_names_.push_back(name);
  nodes_.push_back({false, -1});
  return id;
}

LinkId Platform::add_link(const LinkSpec& spec) {
  if (sealed_)
    throw xbt::InvalidArgument("platform is sealed");
  if (link_by_name(spec.name))
    throw xbt::InvalidArgument("duplicate link name: " + spec.name);
  if (spec.bandwidth_Bps <= 0)
    throw xbt::InvalidArgument("link " + spec.name + ": bandwidth must be positive");
  if (spec.latency_s < 0)
    throw xbt::InvalidArgument("link " + spec.name + ": latency must be non-negative");
  links_.push_back(spec);
  return static_cast<LinkId>(links_.size() - 1);
}

LinkId Platform::add_link(const std::string& name, double bandwidth_Bps, double latency_s, SharingPolicy policy) {
  LinkSpec spec;
  spec.name = name;
  spec.bandwidth_Bps = bandwidth_Bps;
  spec.latency_s = latency_s;
  spec.policy = policy;
  return add_link(spec);
}

void Platform::add_edge(NodeId a, NodeId b, LinkId link) {
  if (sealed_)
    throw xbt::InvalidArgument("platform is sealed");
  if (a < 0 || b < 0 || static_cast<size_t>(a) >= nodes_.size() || static_cast<size_t>(b) >= nodes_.size())
    throw xbt::InvalidArgument("add_edge: bad node id");
  if (link < 0 || static_cast<size_t>(link) >= links_.size())
    throw xbt::InvalidArgument("add_edge: bad link id");
  edges_.push_back({a, b, link});
}

void Platform::add_route(NodeId src, NodeId dst, std::vector<LinkId> links, bool symmetric) {
  if (!is_host(src) || !is_host(dst))
    throw xbt::InvalidArgument("add_route: endpoints must be hosts");
  for (LinkId l : links)
    if (l < 0 || static_cast<size_t>(l) >= links_.size())
      throw xbt::InvalidArgument("add_route: bad link id");
  const size_t n = hosts_.size();
  if (routes_.size() < n * n)
    routes_.resize(n * n);
  double lat = 0;
  for (LinkId l : links)
    lat += links_[static_cast<size_t>(l)].latency_s;
  const int s = host_index(src);
  const int d = host_index(dst);
  routes_[static_cast<size_t>(s) * n + static_cast<size_t>(d)] = Route{links, lat};
  if (symmetric) {
    std::vector<LinkId> rev(links.rbegin(), links.rend());
    routes_[static_cast<size_t>(d) * n + static_cast<size_t>(s)] = Route{std::move(rev), lat};
  }
}

bool Platform::is_host(NodeId node) const {
  return node >= 0 && static_cast<size_t>(node) < nodes_.size() && nodes_[static_cast<size_t>(node)].host;
}

int Platform::host_index(NodeId node) const {
  if (!is_host(node))
    throw xbt::InvalidArgument("node is not a host: " + std::to_string(node));
  return nodes_[static_cast<size_t>(node)].host_index;
}

NodeId Platform::host_node(int host_index) const {
  return host_nodes_.at(static_cast<size_t>(host_index));
}

std::optional<NodeId> Platform::node_by_name(const std::string& name) const {
  for (size_t i = 0; i < node_names_.size(); ++i)
    if (node_names_[i] == name)
      return static_cast<NodeId>(i);
  return std::nullopt;
}

std::optional<int> Platform::host_by_name(const std::string& name) const {
  auto node = node_by_name(name);
  if (!node || !is_host(*node))
    return std::nullopt;
  return host_index(*node);
}

std::optional<LinkId> Platform::link_by_name(const std::string& name) const {
  for (size_t i = 0; i < links_.size(); ++i)
    if (links_[i].name == name)
      return static_cast<LinkId>(i);
  return std::nullopt;
}

void Platform::seal() {
  if (sealed_)
    return;
  const size_t n = hosts_.size();
  // Explicit routes may have sized this already; keep them (they win).
  if (routes_.size() < n * n)
    routes_.resize(n * n);
  if (!edges_.empty())
    compute_graph_routes();
  // A host talking to itself uses the empty loopback route.
  for (size_t h = 0; h < n; ++h)
    if (!routes_[h * n + h])
      routes_[h * n + h] = Route{{}, 0.0};
  sealed_ = true;
}

void Platform::compute_graph_routes() {
  const size_t n_nodes = nodes_.size();
  const size_t n_hosts = hosts_.size();

  // adjacency: node -> (neighbor, link)
  std::vector<std::vector<std::pair<NodeId, LinkId>>> adj(n_nodes);
  for (const Edge& e : edges_) {
    adj[static_cast<size_t>(e.a)].push_back({e.b, e.link});
    adj[static_cast<size_t>(e.b)].push_back({e.a, e.link});
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  for (size_t s = 0; s < n_hosts; ++s) {
    const NodeId src = host_nodes_[s];
    std::vector<double> dist(n_nodes, kInf);
    std::vector<NodeId> prev_node(n_nodes, -1);
    std::vector<LinkId> prev_link(n_nodes, -1);
    using QE = std::pair<double, NodeId>;
    std::priority_queue<QE, std::vector<QE>, std::greater<>> queue;
    dist[static_cast<size_t>(src)] = 0.0;
    queue.push({0.0, src});
    while (!queue.empty()) {
      auto [d, u] = queue.top();
      queue.pop();
      if (d > dist[static_cast<size_t>(u)])
        continue;
      for (auto [v, l] : adj[static_cast<size_t>(u)]) {
        // Metric: latency, with a tiny per-hop epsilon so zero-latency LANs
        // still prefer fewer hops; ties implicitly favour first-declared edges.
        const double w = links_[static_cast<size_t>(l)].latency_s + 1e-9;
        if (dist[static_cast<size_t>(u)] + w < dist[static_cast<size_t>(v)]) {
          dist[static_cast<size_t>(v)] = dist[static_cast<size_t>(u)] + w;
          prev_node[static_cast<size_t>(v)] = u;
          prev_link[static_cast<size_t>(v)] = l;
          queue.push({dist[static_cast<size_t>(v)], v});
        }
      }
    }
    for (size_t d = 0; d < n_hosts; ++d) {
      if (d == s)
        continue;
      auto& slot = routes_[s * n_hosts + d];
      if (slot)
        continue;  // explicit route wins
      const NodeId dst = host_nodes_[d];
      if (dist[static_cast<size_t>(dst)] == kInf)
        continue;  // unreachable
      std::vector<LinkId> path;
      double lat = 0;
      for (NodeId v = dst; v != src; v = prev_node[static_cast<size_t>(v)]) {
        path.push_back(prev_link[static_cast<size_t>(v)]);
        lat += links_[static_cast<size_t>(prev_link[static_cast<size_t>(v)])].latency_s;
      }
      std::reverse(path.begin(), path.end());
      slot = Route{std::move(path), lat};
    }
  }
}

const Route& Platform::route(int src_host, int dst_host) const {
  if (!sealed_)
    throw xbt::InvalidArgument("platform must be sealed before routing queries");
  const size_t n = hosts_.size();
  const auto& slot = routes_[static_cast<size_t>(src_host) * n + static_cast<size_t>(dst_host)];
  if (!slot)
    throw xbt::InvalidArgument("no route between " + hosts_[static_cast<size_t>(src_host)].name + " and " +
                               hosts_[static_cast<size_t>(dst_host)].name);
  return *slot;
}

bool Platform::reachable(int src_host, int dst_host) const {
  if (!sealed_)
    throw xbt::InvalidArgument("platform must be sealed before routing queries");
  const size_t n = hosts_.size();
  return routes_[static_cast<size_t>(src_host) * n + static_cast<size_t>(dst_host)].has_value();
}

}  // namespace sg::platform
