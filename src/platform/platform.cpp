#include "platform/platform.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "xbt/exception.hpp"
#include "xbt/str.hpp"

namespace sg::platform {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Fibonacci-style mix: pair keys are (src << 32 | dst), so the raw value is
/// far too structured for the linear-probing table's power-of-2 mask.
inline size_t route_hash(std::uint64_t key) {
  return static_cast<size_t>((key ^ (key >> 29)) * 0x9E3779B97F4A7C15ull >> 16);
}

/// FNV-1a over a link sequence, for the segment dedup index.
inline std::uint64_t seg_content_hash(const LinkId* links, size_t n) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<std::uint64_t>(static_cast<std::uint32_t>(links[i]));
    h *= 0x100000001B3ull;
  }
  return h;
}
}  // namespace

// ---------------------------------------------------------------------------
// Resolved-route index (open addressing, RouteRefs stored inline)
// ---------------------------------------------------------------------------

const RouteRef* Platform::route_find(std::uint64_t key) const {
  if (route_keys_.empty())
    return nullptr;
  const size_t mask = route_keys_.size() - 1;
  for (size_t i = route_hash(key) & mask;; i = (i + 1) & mask) {
    if (route_keys_[i] == key)
      return &route_refs_[i];
    if (route_keys_[i] == kEmptyKey)
      return nullptr;
  }
}

void Platform::route_index_grow() const {
  const size_t new_cap = route_keys_.empty() ? 64 : route_keys_.size() * 2;
  std::vector<std::uint64_t> old_keys = std::move(route_keys_);
  std::vector<RouteRef> old_refs = std::move(route_refs_);
  route_keys_.assign(new_cap, kEmptyKey);
  route_refs_.assign(new_cap, RouteRef{});
  const size_t mask = new_cap - 1;
  for (size_t i = 0; i < old_keys.size(); ++i) {
    if (old_keys[i] == kEmptyKey)
      continue;
    size_t j = route_hash(old_keys[i]) & mask;
    while (route_keys_[j] != kEmptyKey)
      j = (j + 1) & mask;
    route_keys_[j] = old_keys[i];
    route_refs_[j] = old_refs[i];
  }
}

RouteRef& Platform::route_slot(std::uint64_t key) const {
  // Grow at 70% load so probe runs stay short.
  if (route_keys_.empty() || route_count_ * 10 >= route_keys_.size() * 7)
    route_index_grow();
  const size_t mask = route_keys_.size() - 1;
  size_t i = route_hash(key) & mask;
  while (route_keys_[i] != kEmptyKey && route_keys_[i] != key)
    i = (i + 1) & mask;
  if (route_keys_[i] != key) {
    route_keys_[i] = key;
    ++route_count_;
  }
  return route_refs_[i];
}

// ---------------------------------------------------------------------------
// Interned segment arena
// ---------------------------------------------------------------------------

SegId Platform::append_segment(const LinkId* links, size_t n) const {
  SegRec rec;
  rec.off = static_cast<std::uint32_t>(seg_links_.size());
  rec.len = static_cast<std::uint32_t>(n);
  for (size_t i = 0; i < n; ++i) {
    seg_links_.push_back(links[i]);
    rec.latency += links_[static_cast<size_t>(links[i])].latency_s;
  }
  segs_.push_back(rec);
  return static_cast<SegId>(segs_.size() - 1);
}

SegId Platform::intern_segment(const LinkId* links, size_t n) const {
  const std::uint64_t h = seg_content_hash(links, n);
  auto& candidates = seg_dedup_[h];
  for (SegId s : candidates) {
    const SegRec& rec = segs_[static_cast<size_t>(s)];
    if (rec.len == n &&
        std::equal(links, links + n, seg_links_.begin() + rec.off))
      return s;
  }
  const SegId s = append_segment(links, n);
  candidates.push_back(s);
  return s;
}

RouteView Platform::make_view(const RouteRef& ref) const {
  RouteView v;
  v.latency_ = ref.latency;
  const SegId parts[3] = {ref.up, ref.mid, ref.down};
  for (int i = 0; i < 3; ++i) {
    if (parts[i] == kNoSeg)
      continue;
    const SegRec& rec = segs_[static_cast<size_t>(parts[i])];
    v.spans_[i].b = seg_links_.data() + rec.off;
    v.spans_[i].n = rec.len;
  }
  return v;
}

// ---------------------------------------------------------------------------
// Construction
// ---------------------------------------------------------------------------

void Platform::drain_node_index() const {
  if (node_index_synced_.v.load(std::memory_order_acquire) == node_names_.size())
    return;
  std::lock_guard<std::mutex> lock(index_mutex_.m);
  for (size_t i = node_index_synced_.v.load(std::memory_order_relaxed); i < node_names_.size(); ++i)
    node_index_.emplace(node_names_[i], static_cast<NodeId>(i));
  node_index_synced_.v.store(node_names_.size(), std::memory_order_release);
}

void Platform::drain_link_index() const {
  if (link_index_synced_.v.load(std::memory_order_acquire) == links_.size())
    return;
  std::lock_guard<std::mutex> lock(index_mutex_.m);
  for (size_t i = link_index_synced_.v.load(std::memory_order_relaxed); i < links_.size(); ++i)
    link_index_.emplace(links_[i].name, static_cast<LinkId>(i));
  link_index_synced_.v.store(links_.size(), std::memory_order_release);
}

NodeId Platform::host_node_internal(const HostSpec& spec, bool defer_index) {
  const NodeId id = static_cast<NodeId>(node_names_.size());
  if (!defer_index) {
    // Single-probe insert: the emplace result doubles as the duplicate check
    // (join_host churn makes this a hot path on large platforms).
    drain_node_index();
    if (!node_index_.emplace(spec.name, id).second)
      throw xbt::InvalidArgument("duplicate node name: " + spec.name);
  }
  node_names_.push_back(spec.name);
  if (!defer_index)
    node_index_synced_.v.store(node_names_.size(), std::memory_order_release);
  nodes_.push_back({true, static_cast<int>(hosts_.size())});
  hosts_.push_back(spec);
  host_nodes_.push_back(id);
  host_zone_.push_back(-1);
  host_present_.push_back(1);
  host_departed_at_.push_back(0.0);
  return id;
}

NodeId Platform::add_host(const HostSpec& spec) {
  if (sealed_)
    throw xbt::InvalidArgument("platform is sealed");
  return host_node_internal(spec);
}

NodeId Platform::add_host(const std::string& name, double speed_flops) {
  HostSpec spec;
  spec.name = name;
  spec.speed_flops = speed_flops;
  return add_host(spec);
}

NodeId Platform::add_router(const std::string& name) {
  if (sealed_)
    throw xbt::InvalidArgument("platform is sealed");
  const NodeId id = static_cast<NodeId>(node_names_.size());
  drain_node_index();
  if (!node_index_.emplace(name, id).second)
    throw xbt::InvalidArgument("duplicate node name: " + name);
  node_names_.push_back(name);
  node_index_synced_.v.store(node_names_.size(), std::memory_order_release);
  nodes_.push_back({false, -1});
  return id;
}

LinkId Platform::link_internal(const LinkSpec& spec, bool defer_index) {
  if (spec.bandwidth_Bps <= 0)
    throw xbt::InvalidArgument("link " + spec.name + ": bandwidth must be positive");
  if (spec.latency_s < 0)
    throw xbt::InvalidArgument("link " + spec.name + ": latency must be non-negative");
  const LinkId id = static_cast<LinkId>(links_.size());
  if (!defer_index) {
    drain_link_index();
    if (!link_index_.emplace(spec.name, id).second)
      throw xbt::InvalidArgument("duplicate link name: " + spec.name);
  }
  links_.push_back(spec);
  if (!defer_index)
    link_index_synced_.v.store(links_.size(), std::memory_order_release);
  return id;
}

LinkId Platform::add_link(const LinkSpec& spec) {
  if (sealed_)
    throw xbt::InvalidArgument("platform is sealed");
  return link_internal(spec);
}

LinkId Platform::add_link(const std::string& name, double bandwidth_Bps, double latency_s, SharingPolicy policy) {
  LinkSpec spec;
  spec.name = name;
  spec.bandwidth_Bps = bandwidth_Bps;
  spec.latency_s = latency_s;
  spec.policy = policy;
  return add_link(spec);
}

void Platform::add_edge(NodeId a, NodeId b, LinkId link) {
  if (sealed_)
    throw xbt::InvalidArgument("platform is sealed");
  if (a < 0 || b < 0 || static_cast<size_t>(a) >= nodes_.size() || static_cast<size_t>(b) >= nodes_.size())
    throw xbt::InvalidArgument("add_edge: bad node id");
  if (link < 0 || static_cast<size_t>(link) >= links_.size())
    throw xbt::InvalidArgument("add_edge: bad link id");
  // Cluster zones rely on the gateway being the zone's only connection to the
  // rest of the platform: O(1) composition assumes every path in/out crosses
  // it. Reject edges that would splice into a cluster's interior.
  for (NodeId n : {a, b}) {
    if (nodes_[static_cast<size_t>(n)].host) {
      const ZoneId z = host_zone_[static_cast<size_t>(nodes_[static_cast<size_t>(n)].host_index)];
      if (z >= 0 && zones_[static_cast<size_t>(z)].kind == ZoneKind::kCluster)
        throw xbt::InvalidArgument("add_edge: " + node_names_[static_cast<size_t>(n)] +
                                   " is a member of cluster zone " + zones_[static_cast<size_t>(z)].name +
                                   "; attach through the zone gateway instead");
    } else {
      // A hub that doubles as the gateway (no backbone) IS the attach point.
      for (const ZoneRec& z : zones_)
        if (z.hub == n && z.gateway != n)
          throw xbt::InvalidArgument("add_edge: " + node_names_[static_cast<size_t>(n)] +
                                     " is the hub of cluster zone " + z.name +
                                     "; attach through the zone gateway instead");
    }
  }
  edges_.push_back({a, b, link});
}

void Platform::add_route(NodeId src, NodeId dst, std::vector<LinkId> links, bool symmetric) {
  if (!is_host(src) || !is_host(dst))
    throw xbt::InvalidArgument("add_route: endpoints must be hosts");
  for (LinkId l : links)
    if (l < 0 || static_cast<size_t>(l) >= links_.size())
      throw xbt::InvalidArgument("add_route: bad link id");
  const int s = host_index(src);
  const int d = host_index(dst);
  const SegId seg = links.empty() ? kNoSeg : intern_segment(links.data(), links.size());
  const double lat = seg == kNoSeg ? 0.0 : segs_[static_cast<size_t>(seg)].latency;
  route_slot(pair_key(s, d)) = RouteRef{kNoSeg, seg, kNoSeg, lat};
  explicit_routes_.push_back({s, d, RouteRef{kNoSeg, seg, kNoSeg, lat}});
  if (symmetric) {
    std::vector<LinkId> rev(links.rbegin(), links.rend());
    const SegId rseg = rev.empty() ? kNoSeg : intern_segment(rev.data(), rev.size());
    route_slot(pair_key(d, s)) = RouteRef{kNoSeg, rseg, kNoSeg, lat};
    explicit_routes_.push_back({d, s, RouteRef{kNoSeg, rseg, kNoSeg, lat}});
  }
}

// ---------------------------------------------------------------------------
// Zones
// ---------------------------------------------------------------------------

ZoneId Platform::add_cluster_zone(const ClusterZoneSpec& spec) {
  if (sealed_)
    throw xbt::InvalidArgument("platform is sealed");
  if (spec.count <= 0)
    throw xbt::InvalidArgument("cluster zone " + spec.name + ": count must be positive");
  for (const ZoneRec& z : zones_)
    if (z.name == spec.name)
      throw xbt::InvalidArgument("duplicate zone name: " + spec.name);

  ZoneRec zone;
  zone.name = spec.name;
  zone.kind = ZoneKind::kCluster;
  zone.spec = spec;
  zone.up_latency = spec.link_latency;
  const std::string& prefix = spec.host_prefix.empty() ? spec.name : spec.host_prefix;
  const ZoneId zid = static_cast<ZoneId>(zones_.size());

  const NodeId hub = add_router(spec.name + "-switch");
  zone.hub = hub;
  const bool has_backbone = spec.backbone_bandwidth > 0;
  if (has_backbone) {
    zone.gateway = add_router(spec.name + "-out");
    LinkSpec bb;
    bb.name = spec.name + "-backbone";
    bb.bandwidth_Bps = spec.backbone_bandwidth;
    bb.latency_s = spec.backbone_latency;
    bb.policy = spec.backbone_fatpipe ? SharingPolicy::kFatpipe : SharingPolicy::kShared;
    zone.backbone = add_link(bb);
    zone.backbone_latency = spec.backbone_latency;
    edges_.push_back({hub, zone.gateway, zone.backbone});
  } else {
    zone.gateway = hub;
  }

  zone.first_host = static_cast<int>(hosts_.size());
  zone.count = spec.count;
  // Hosts, private links, edges — names and declaration order match the
  // historical make_cluster() exactly, so flat-graph twins are comparable
  // link-id for link-id.
  for (int m = 0; m < spec.count; ++m) {
    const std::string name = xbt::format("%s%d", prefix.c_str(), m);
    const NodeId h = add_host(name, spec.host_speed);
    const LinkId l = add_link(name + "-link", spec.link_bandwidth, spec.link_latency);
    if (m == 0)
      zone.first_uplink = l;
    else if (l != zone.first_uplink + m)
      throw xbt::InvalidArgument("cluster zone " + spec.name + ": member links must be contiguous");
    edges_.push_back({h, hub, l});
    host_zone_[static_cast<size_t>(nodes_[static_cast<size_t>(h)].host_index)] = zid;
  }

  // Intern the per-member route pieces, contiguously: [up], [up, bb],
  // [bb, up]. Without a backbone the hub is the gateway and all three
  // pieces collapse to [up].
  zone.seg_intra0 = static_cast<SegId>(segs_.size());
  for (int m = 0; m < spec.count; ++m) {
    const LinkId up = zone.first_uplink + m;
    append_segment(&up, 1);
  }
  if (has_backbone) {
    zone.seg_out0 = static_cast<SegId>(segs_.size());
    for (int m = 0; m < spec.count; ++m) {
      const LinkId out[2] = {zone.first_uplink + m, zone.backbone};
      append_segment(out, 2);
    }
    zone.seg_in0 = static_cast<SegId>(segs_.size());
    for (int m = 0; m < spec.count; ++m) {
      const LinkId in[2] = {zone.backbone, zone.first_uplink + m};
      append_segment(in, 2);
    }
  } else {
    zone.seg_out0 = zone.seg_intra0;
    zone.seg_in0 = zone.seg_intra0;
  }

  zones_.push_back(std::move(zone));
  return zid;
}

ZoneId Platform::add_graph_zone(const std::string& name, NodeId gateway) {
  if (sealed_)
    throw xbt::InvalidArgument("platform is sealed");
  if (gateway < 0 || static_cast<size_t>(gateway) >= nodes_.size())
    throw xbt::InvalidArgument("add_graph_zone: bad gateway node");
  for (const ZoneRec& z : zones_)
    if (z.name == name)
      throw xbt::InvalidArgument("duplicate zone name: " + name);
  ZoneRec zone;
  zone.name = name;
  zone.kind = ZoneKind::kDijkstra;
  zone.gateway = gateway;
  zones_.push_back(std::move(zone));
  return static_cast<ZoneId>(zones_.size() - 1);
}

void Platform::zone_add_host(ZoneId zone, int host_index) {
  if (zone < 0 || static_cast<size_t>(zone) >= zones_.size())
    throw xbt::InvalidArgument("zone_add_host: bad zone id");
  check_host_index(host_index, "zone_add_host");
  if (zones_[static_cast<size_t>(zone)].kind == ZoneKind::kCluster)
    throw xbt::InvalidArgument("zone_add_host: cluster zones own their members");
  if (host_zone_[static_cast<size_t>(host_index)] >= 0)
    throw xbt::InvalidArgument("zone_add_host: " + hosts_[static_cast<size_t>(host_index)].name +
                               " already belongs to a zone");
  host_zone_[static_cast<size_t>(host_index)] = zone;
  ++zones_[static_cast<size_t>(zone)].count;
}

std::optional<ZoneId> Platform::zone_by_name(const std::string& name) const {
  for (size_t z = 0; z < zones_.size(); ++z)
    if (zones_[z].name == name)
      return static_cast<ZoneId>(z);
  return std::nullopt;
}

const ClusterZoneSpec& Platform::cluster_zone_spec(ZoneId zone) const {
  const ZoneRec& z = zones_.at(static_cast<size_t>(zone));
  if (z.kind != ZoneKind::kCluster)
    throw xbt::InvalidArgument("zone " + z.name + " is not a cluster zone");
  return z.spec;
}

// ---------------------------------------------------------------------------
// Lookup
// ---------------------------------------------------------------------------

bool Platform::is_host(NodeId node) const {
  return node >= 0 && static_cast<size_t>(node) < nodes_.size() && nodes_[static_cast<size_t>(node)].host;
}

int Platform::host_index(NodeId node) const {
  if (!is_host(node))
    throw xbt::InvalidArgument("node is not a host: " + std::to_string(node));
  return nodes_[static_cast<size_t>(node)].host_index;
}

NodeId Platform::host_node(int host_index) const {
  return host_nodes_.at(static_cast<size_t>(host_index));
}

std::optional<NodeId> Platform::node_by_name(const std::string& name) const {
  drain_node_index();
  auto it = node_index_.find(name);
  if (it == node_index_.end())
    return std::nullopt;
  return it->second;
}

std::optional<int> Platform::host_by_name(const std::string& name) const {
  auto node = node_by_name(name);
  if (!node || !is_host(*node))
    return std::nullopt;
  return host_index(*node);
}

std::optional<LinkId> Platform::link_by_name(const std::string& name) const {
  drain_link_index();
  auto it = link_index_.find(name);
  if (it == link_index_.end())
    return std::nullopt;
  return it->second;
}

void Platform::seal() {
  if (sealed_)
    return;
  adj_.assign(nodes_.size(), {});
  link_degree_.assign(links_.size(), 0);
  for (const Edge& e : edges_) {
    adj_[static_cast<size_t>(e.a)].push_back({e.b, e.link});
    adj_[static_cast<size_t>(e.b)].push_back({e.a, e.link});
    ++link_degree_[static_cast<size_t>(e.link)];
  }
  // SSSP-tree LRU capacity: configured floor, raised adaptively with the
  // platform size so that > 64 concurrently active sources (each tree is
  // O(nodes)) do not evict each other in a thrash loop.
  config::declare(kCfgSsspCache, 64, 1, 1 << 20,
                  "max memoized single-source shortest-path trees (LRU); "
                  "seal() raises it to hosts/16 when that is larger");
  const long configured = config::get(kCfgSsspCache);
  sssp_cache_cap_ = std::max(static_cast<size_t>(configured), hosts_.size() / 16);
  build_shard_map();
  sealed_ = true;
}

void Platform::build_shard_map() {
  ShardMap& map = shard_map_;
  map.shard_count = static_cast<int>(zones_.size()) + 1;
  map.zone_shard.resize(zones_.size());
  for (size_t z = 0; z < zones_.size(); ++z)
    map.zone_shard[z] = static_cast<std::int32_t>(z) + 1;
  map.host_shard.assign(hosts_.size(), 0);
  for (size_t h = 0; h < hosts_.size(); ++h)
    if (host_zone_[h] >= 0)
      map.host_shard[h] = map.zone_shard[static_cast<size_t>(host_zone_[h])];

  // Link placement. Cluster zones are structural: member up/down links are
  // interior by construction, the backbone link is the gateway crossing
  // (backbone shard). Graph-zone interiority is derived from the edges: a
  // link is interior to zone z iff every edge it serves joins two hosts of
  // z — any edge touching a router or another zone makes it backbone.
  constexpr std::int32_t kUnset = -2;
  constexpr std::int32_t kBackbone = -1;
  std::vector<std::int32_t> link_zone(links_.size(), kUnset);
  for (const ZoneRec& z : zones_) {
    if (z.kind != ZoneKind::kCluster)
      continue;
    const ZoneId zid = static_cast<ZoneId>(&z - zones_.data());
    for (int m = 0; m < z.count; ++m)
      link_zone[static_cast<size_t>(z.first_uplink + m)] = zid;
    if (z.backbone >= 0)
      link_zone[static_cast<size_t>(z.backbone)] = kBackbone;
  }
  auto node_zone = [&](NodeId nd) -> std::int32_t {
    const NodeRec& rec = nodes_[static_cast<size_t>(nd)];
    return rec.host ? host_zone_[static_cast<size_t>(rec.host_index)] : -1;
  };
  for (const Edge& e : edges_) {
    std::int32_t& lz = link_zone[static_cast<size_t>(e.link)];
    if (lz == kBackbone || (lz >= 0 && zones_[static_cast<size_t>(lz)].kind == ZoneKind::kCluster))
      continue;  // cluster placement is structural, not edge-derived
    const std::int32_t za = node_zone(e.a);
    const std::int32_t zb = node_zone(e.b);
    const std::int32_t ez = (za >= 0 && za == zb) ? za : kBackbone;
    if (lz == kUnset)
      lz = ez;
    else if (lz != ez)
      lz = kBackbone;
  }
  map.link_shard.assign(links_.size(), 0);
  for (size_t l = 0; l < links_.size(); ++l)
    if (link_zone[l] >= 0)
      map.link_shard[l] = map.zone_shard[static_cast<size_t>(link_zone[l])];

  // Gateway links: the backbone-shard links adjacent to a zone's gateway —
  // the coupling surface every cross-zone flow of that zone runs through.
  map.gateway_links.clear();
  std::vector<char> is_gateway(nodes_.size(), 0);
  for (const ZoneRec& z : zones_)
    if (z.gateway >= 0)
      is_gateway[static_cast<size_t>(z.gateway)] = 1;
  std::vector<char> seen(links_.size(), 0);
  for (const Edge& e : edges_) {
    if (!is_gateway[static_cast<size_t>(e.a)] && !is_gateway[static_cast<size_t>(e.b)])
      continue;
    if (map.link_shard[static_cast<size_t>(e.link)] == 0 && !seen[static_cast<size_t>(e.link)]) {
      seen[static_cast<size_t>(e.link)] = 1;
      map.gateway_links.push_back(e.link);
    }
  }
}

const ShardMap& Platform::shard_map() const {
  if (!sealed_)
    throw xbt::InvalidArgument("shard_map: platform must be sealed first");
  return shard_map_;
}

// ---------------------------------------------------------------------------
// Dynamic membership
// ---------------------------------------------------------------------------

int Platform::join_host(ZoneId zone, const std::string& name, double speed_flops) {
  if (!sealed_)
    throw xbt::InvalidArgument("join_host: platform must be sealed (use add_* before seal())");
  if (zone < 0 || static_cast<size_t>(zone) >= zones_.size())
    throw xbt::InvalidArgument("join_host: bad zone id " + std::to_string(zone));
  ZoneRec& z = zones_[static_cast<size_t>(zone)];
  if (z.kind != ZoneKind::kCluster)
    throw xbt::InvalidArgument("join_host: zone " + z.name +
                               " is not a cluster zone (graph hosts use the attach overload)");

  const std::string& prefix = z.spec.host_prefix.empty() ? z.spec.name : z.spec.host_prefix;
  // Number by members-ever-created: base members and earlier extras keep
  // their names forever (departure does not free a name), so this is unique
  // — which lets the generated-name path skip the name maps entirely (they
  // are drained lazily by the next by-name lookup, keeping a join
  // O(affected) rather than O(hash table)).
  const bool generated = name.empty();
  const std::string host_name =
      generated ? xbt::format("%s%d", prefix.c_str(), z.spec.count + static_cast<int>(z.extra.size()))
                : name;
  HostSpec hs;
  hs.name = host_name;
  hs.speed_flops = speed_flops > 0 ? speed_flops : z.spec.host_speed;
  const NodeId hnode = host_node_internal(hs, /*defer_index=*/generated);
  const int h = nodes_[static_cast<size_t>(hnode)].host_index;

  LinkSpec ls;
  ls.name = host_name + "-link";
  ls.bandwidth_Bps = z.spec.link_bandwidth;
  ls.latency_s = z.spec.link_latency;
  const LinkId l = link_internal(ls, /*defer_index=*/generated);

  // Splice into every seal-time structure in place — O(affected), no re-seal.
  edges_.push_back({hnode, z.hub, l});
  adj_.resize(nodes_.size());
  adj_[static_cast<size_t>(hnode)].push_back({z.hub, l});
  adj_[static_cast<size_t>(z.hub)].push_back({hnode, l});
  link_degree_.push_back(1);
  host_zone_[static_cast<size_t>(h)] = zone;
  ++z.count;

  ZoneRec::ExtraMember em;
  em.host = h;
  em.uplink = l;
  em.seg_intra = append_segment(&l, 1);
  if (z.backbone >= 0) {
    const LinkId out[2] = {l, z.backbone};
    em.seg_out = append_segment(out, 2);
    const LinkId in[2] = {z.backbone, l};
    em.seg_in = append_segment(in, 2);
  } else {
    em.seg_out = em.seg_intra;
    em.seg_in = em.seg_intra;
  }
  z.extra_index.emplace(h, z.extra.size());
  z.extra.push_back(em);

  shard_map_.host_shard.push_back(shard_map_.zone_shard[static_cast<size_t>(zone)]);
  shard_map_.link_shard.push_back(shard_map_.zone_shard[static_cast<size_t>(zone)]);
  extend_sssp_trees(z.hub, l);
  return h;
}

int Platform::join_host(const HostSpec& spec, NodeId attach, const LinkSpec& uplink) {
  if (!sealed_)
    throw xbt::InvalidArgument("join_host: platform must be sealed (use add_* before seal())");
  if (attach < 0 || static_cast<size_t>(attach) >= nodes_.size())
    throw xbt::InvalidArgument("join_host: bad attach node id");
  // Same invariant as add_edge: a cluster's interior is only reachable
  // through its gateway, so new hosts may not splice into it.
  if (nodes_[static_cast<size_t>(attach)].host) {
    const ZoneId az = host_zone_[static_cast<size_t>(nodes_[static_cast<size_t>(attach)].host_index)];
    if (az >= 0 && zones_[static_cast<size_t>(az)].kind == ZoneKind::kCluster)
      throw xbt::InvalidArgument("join_host: " + node_names_[static_cast<size_t>(attach)] +
                                 " is a member of cluster zone " + zones_[static_cast<size_t>(az)].name +
                                 "; attach through the zone gateway instead");
  } else {
    for (const ZoneRec& z : zones_)
      if (z.hub == attach && z.gateway != attach)
        throw xbt::InvalidArgument("join_host: " + node_names_[static_cast<size_t>(attach)] +
                                   " is the hub of cluster zone " + z.name +
                                   "; attach through the zone gateway instead");
  }

  const NodeId hnode = host_node_internal(spec);
  const int h = nodes_[static_cast<size_t>(hnode)].host_index;
  const LinkId l = link_internal(uplink);

  edges_.push_back({hnode, attach, l});
  adj_.resize(nodes_.size());
  adj_[static_cast<size_t>(hnode)].push_back({attach, l});
  adj_[static_cast<size_t>(attach)].push_back({hnode, l});
  link_degree_.push_back(1);

  // Unzoned hosts and their uplinks live on the backbone shard, exactly
  // where a fresh seal() would place them.
  shard_map_.host_shard.push_back(0);
  shard_map_.link_shard.push_back(0);
  extend_sssp_trees(attach, l);
  return h;
}

void Platform::leave_host(int host_index, double at) {
  check_host_index(host_index, "leave_host");
  if (!sealed_)
    throw xbt::InvalidArgument("leave_host: platform must be sealed");
  if (!host_present_[static_cast<size_t>(host_index)])
    throw xbt::InvalidArgument("leave_host: host " + hosts_[static_cast<size_t>(host_index)].name +
                               " already departed at t=" +
                               xbt::format("%g", host_departed_at_[static_cast<size_t>(host_index)]));
  const bool transit =
      adj_[static_cast<size_t>(host_nodes_[static_cast<size_t>(host_index)])].size() > 1;
  host_present_[static_cast<size_t>(host_index)] = 0;
  host_departed_at_[static_cast<size_t>(host_index)] = at;
  ++departed_count_;
  // Leaf hosts (cluster members, joined hosts) transit nothing: presence
  // gating alone keeps every cache truthful, so departure is O(1). Only a
  // transit-capable node invalidates paths that ran through it.
  if (transit)
    flush_transit_caches();
}

void Platform::rejoin_host(int host_index) {
  check_host_index(host_index, "rejoin_host");
  if (!sealed_)
    throw xbt::InvalidArgument("rejoin_host: platform must be sealed");
  if (host_present_[static_cast<size_t>(host_index)])
    throw xbt::InvalidArgument("rejoin_host: host " + hosts_[static_cast<size_t>(host_index)].name +
                               " is already present");
  host_present_[static_cast<size_t>(host_index)] = 1;
  --departed_count_;
  // A returning transit node may offer better paths than the detour the
  // caches learned while it was away; leaf returns change no path.
  if (adj_[static_cast<size_t>(host_nodes_[static_cast<size_t>(host_index)])].size() > 1)
    flush_transit_caches();
}

std::vector<LinkId> Platform::host_private_links(int host_index) const {
  check_host_index(host_index, "host_private_links");
  std::vector<LinkId> out;
  if (!sealed_)
    return out;
  for (auto [peer, l] : adj_[static_cast<size_t>(host_nodes_[static_cast<size_t>(host_index)])]) {
    (void)peer;
    if (link_degree_[static_cast<size_t>(l)] == 1)
      out.push_back(l);
  }
  return out;
}

void Platform::member_segs(const ZoneRec& zone, int host_index, SegId* intra, SegId* out,
                           SegId* in) const {
  const int m = host_index - zone.first_host;
  if (m >= 0 && m < zone.spec.count) {
    *intra = zone.seg_intra0 + m;
    *out = zone.seg_out0 + m;
    *in = zone.seg_in0 + m;
    return;
  }
  const ZoneRec::ExtraMember& em = zone.extra[zone.extra_index.at(host_index)];
  *intra = em.seg_intra;
  *out = em.seg_out;
  *in = em.seg_in;
}

void Platform::extend_sssp_trees(NodeId attach, LinkId uplink) const {
  // The joined host is a leaf: the only way in is through `attach`, so the
  // exact distance is dist(attach) + w — no re-run, O(cached trees) total.
  const double w = links_[static_cast<size_t>(uplink)].latency_s + 1e-9;
  for (auto& [src, tree] : sssp_cache_) {
    (void)src;
    const double da = tree.dist[static_cast<size_t>(attach)];
    const bool through = da != kInf && node_transitable(attach);
    tree.dist.push_back(through ? da + w : kInf);
    tree.prev_node.push_back(through ? attach : -1);
    tree.prev_link.push_back(through ? uplink : -1);
  }
}

void Platform::flush_transit_caches() const {
  sssp_cache_.clear();
  node_pair_segs_.clear();
  route_keys_.clear();
  route_refs_.clear();
  route_count_ = 0;
  for (const ExplicitRoute& r : explicit_routes_)
    route_slot(pair_key(r.src, r.dst)) = r.ref;
}

void Platform::check_host_index(int host_index, const char* what) const {
  if (host_index < 0 || static_cast<size_t>(host_index) >= hosts_.size())
    throw xbt::InvalidArgument(std::string(what) + ": host index " + std::to_string(host_index) +
                               " out of range (platform has " + std::to_string(hosts_.size()) + " hosts)");
}

void Platform::check_host_present(int host_index, const char* what) const {
  if (host_present_[static_cast<size_t>(host_index)])
    return;
  throw xbt::InvalidArgument(std::string(what) + ": host " +
                             hosts_[static_cast<size_t>(host_index)].name + " departed at t=" +
                             xbt::format("%g", host_departed_at_[static_cast<size_t>(host_index)]) +
                             " (rejoin_host() restores it)");
}

void Platform::throw_no_route(int src_host, int dst_host) const {
  throw xbt::InvalidArgument("no route between " + hosts_[static_cast<size_t>(src_host)].name + " and " +
                             hosts_[static_cast<size_t>(dst_host)].name +
                             ": hosts are in disconnected components");
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

const Platform::SsspTree& Platform::sssp_from(NodeId src) const {
  auto hit = sssp_cache_.find(src);
  if (hit != sssp_cache_.end()) {
    hit->second.last_used = ++sssp_tick_;  // O(1) LRU refresh
    return hit->second;
  }

  if (sssp_cache_.size() >= sssp_cache_cap_) {
    // Evict the least recently used tree. The O(cap) scan only runs on a
    // miss, where the Dijkstra below dominates it anyway.
    auto lru = sssp_cache_.begin();
    for (auto it = std::next(lru); it != sssp_cache_.end(); ++it)
      if (it->second.last_used < lru->second.last_used)
        lru = it;
    sssp_cache_.erase(lru);
  }

  const size_t n_nodes = nodes_.size();
  SsspTree tree;
  tree.dist.assign(n_nodes, kInf);
  tree.prev_node.assign(n_nodes, -1);
  tree.prev_link.assign(n_nodes, -1);
  using QE = std::pair<double, NodeId>;
  std::priority_queue<QE, std::vector<QE>, std::greater<>> queue;
  tree.dist[static_cast<size_t>(src)] = 0.0;
  queue.push({0.0, src});
  while (!queue.empty()) {
    auto [d, u] = queue.top();
    queue.pop();
    if (d > tree.dist[static_cast<size_t>(u)])
      continue;
    // Departed hosts can still be reached (as endpoints) but never relayed
    // through; the source itself is exempt so presence stays the caller's
    // check, not a routing property.
    if (u != src && !node_transitable(u))
      continue;
    for (auto [v, l] : adj_[static_cast<size_t>(u)]) {
      // Metric: latency, with a tiny per-hop epsilon so zero-latency LANs
      // still prefer fewer hops; ties implicitly favour first-declared edges.
      const double w = links_[static_cast<size_t>(l)].latency_s + 1e-9;
      if (tree.dist[static_cast<size_t>(u)] + w < tree.dist[static_cast<size_t>(v)]) {
        tree.dist[static_cast<size_t>(v)] = tree.dist[static_cast<size_t>(u)] + w;
        tree.prev_node[static_cast<size_t>(v)] = u;
        tree.prev_link[static_cast<size_t>(v)] = l;
        queue.push({tree.dist[static_cast<size_t>(v)], v});
      }
    }
  }

  tree.last_used = ++sssp_tick_;
  auto [ins, inserted] = sssp_cache_.emplace(src, std::move(tree));
  (void)inserted;
  return ins->second;
}

bool Platform::node_path_segment(NodeId from, NodeId to, SegId* seg) const {
  if (from == to) {
    *seg = kNoSeg;
    return true;
  }
  const std::uint64_t key = pair_key(from, to);
  auto hit = node_pair_segs_.find(key);
  if (hit != node_pair_segs_.end()) {
    *seg = hit->second;
    return true;
  }
  const SsspTree& tree = sssp_from(from);
  if (tree.dist[static_cast<size_t>(to)] == kInf)
    return false;
  std::vector<LinkId> path;
  for (NodeId v = to; v != from; v = tree.prev_node[static_cast<size_t>(v)])
    path.push_back(tree.prev_link[static_cast<size_t>(v)]);
  std::reverse(path.begin(), path.end());
  *seg = intern_segment(path.data(), path.size());
  node_pair_segs_.emplace(key, *seg);
  return true;
}

bool Platform::compose_zone_route(int src_host, int dst_host, RouteRef* out) const {
  const ZoneId zs = host_zone_[static_cast<size_t>(src_host)];
  const ZoneId zd = host_zone_[static_cast<size_t>(dst_host)];
  const ZoneRec* src_zone =
      zs >= 0 && zones_[static_cast<size_t>(zs)].kind == ZoneKind::kCluster ? &zones_[static_cast<size_t>(zs)] : nullptr;
  const ZoneRec* dst_zone =
      zd >= 0 && zones_[static_cast<size_t>(zd)].kind == ZoneKind::kCluster ? &zones_[static_cast<size_t>(zd)] : nullptr;
  if (src_zone == nullptr && dst_zone == nullptr)
    return false;  // no cluster rule applies: plain graph resolution

  if (src_zone != nullptr && src_zone == dst_zone) {
    // Intra-cluster: up(i) through the hub to up(j). O(1), no Dijkstra, no
    // per-pair state — this is the 99% path of a cluster workload.
    SegId i_intra, i_out, i_in, j_intra, j_out, j_in;
    member_segs(*src_zone, src_host, &i_intra, &i_out, &i_in);
    member_segs(*src_zone, dst_host, &j_intra, &j_out, &j_in);
    out->up = i_intra;
    out->mid = kNoSeg;
    out->down = j_intra;
    out->latency = 2 * src_zone->up_latency;
    return true;
  }

  // Leaving and/or entering a cluster: member -> gateway, gateway -> gateway
  // through the flat graph (memoized per endpoint node pair — all members
  // of a cluster share their gateway's entries, so this never scales with
  // member pairs), gateway -> member.
  RouteRef ref;
  NodeId mid_from;
  NodeId mid_to;
  if (src_zone != nullptr) {
    SegId s_intra, s_out, s_in;
    member_segs(*src_zone, src_host, &s_intra, &s_out, &s_in);
    ref.up = s_out;
    ref.latency += src_zone->up_latency + src_zone->backbone_latency;
    mid_from = src_zone->gateway;
  } else {
    mid_from = host_nodes_[static_cast<size_t>(src_host)];
  }
  if (dst_zone != nullptr) {
    SegId d_intra, d_out, d_in;
    member_segs(*dst_zone, dst_host, &d_intra, &d_out, &d_in);
    ref.down = d_in;
    ref.latency += dst_zone->up_latency + dst_zone->backbone_latency;
    mid_to = dst_zone->gateway;
  } else {
    mid_to = host_nodes_[static_cast<size_t>(dst_host)];
  }
  if (!node_path_segment(mid_from, mid_to, &ref.mid))
    throw_no_route(src_host, dst_host);
  if (ref.mid != kNoSeg)
    ref.latency += segs_[static_cast<size_t>(ref.mid)].latency;
  *out = ref;
  return true;
}

RouteView Platform::route(int src_host, int dst_host) const {
  check_host_index(src_host, "route");
  check_host_index(dst_host, "route");
  if (!sealed_)
    throw xbt::InvalidArgument("platform must be sealed before routing between " +
                               hosts_[static_cast<size_t>(src_host)].name + " and " +
                               hosts_[static_cast<size_t>(dst_host)].name + " (call Platform::seal())");
  check_host_present(src_host, "route");
  check_host_present(dst_host, "route");

  // Explicit routes (and memoized graph resolutions) win over everything.
  if (const RouteRef* cached = route_find(pair_key(src_host, dst_host)))
    return make_view(*cached);
  if (src_host == dst_host)
    return RouteView{};  // loopback, absent an explicit self-route

  RouteRef composed;
  if (compose_zone_route(src_host, dst_host, &composed))
    return make_view(composed);  // zone rule: O(1), never cached per pair

  const NodeId src = host_nodes_[static_cast<size_t>(src_host)];
  const NodeId dst = host_nodes_[static_cast<size_t>(dst_host)];
  const SsspTree& tree = sssp_from(src);
  if (tree.dist[static_cast<size_t>(dst)] == kInf)
    throw_no_route(src_host, dst_host);

  std::vector<LinkId> path;
  for (NodeId v = dst; v != src; v = tree.prev_node[static_cast<size_t>(v)])
    path.push_back(tree.prev_link[static_cast<size_t>(v)]);
  std::reverse(path.begin(), path.end());
  const SegId seg = intern_segment(path.data(), path.size());
  RouteRef& slot = route_slot(pair_key(src_host, dst_host));
  slot = RouteRef{kNoSeg, seg, kNoSeg, segs_[static_cast<size_t>(seg)].latency};
  return make_view(slot);
}

bool Platform::reachable(int src_host, int dst_host) const {
  check_host_index(src_host, "reachable");
  check_host_index(dst_host, "reachable");
  if (!sealed_)
    throw xbt::InvalidArgument("platform must be sealed before routing between " +
                               hosts_[static_cast<size_t>(src_host)].name + " and " +
                               hosts_[static_cast<size_t>(dst_host)].name + " (call Platform::seal())");
  if (!host_present_[static_cast<size_t>(src_host)] || !host_present_[static_cast<size_t>(dst_host)])
    return false;
  if (route_find(pair_key(src_host, dst_host)) != nullptr)
    return true;
  if (src_host == dst_host)
    return true;

  const ZoneId zs = host_zone_[static_cast<size_t>(src_host)];
  const ZoneId zd = host_zone_[static_cast<size_t>(dst_host)];
  const bool src_cluster = zs >= 0 && zones_[static_cast<size_t>(zs)].kind == ZoneKind::kCluster;
  const bool dst_cluster = zd >= 0 && zones_[static_cast<size_t>(zd)].kind == ZoneKind::kCluster;
  if (src_cluster && zs == zd)
    return true;
  const NodeId from = src_cluster ? zones_[static_cast<size_t>(zs)].gateway
                                  : host_nodes_[static_cast<size_t>(src_host)];
  const NodeId to = dst_cluster ? zones_[static_cast<size_t>(zd)].gateway
                                : host_nodes_[static_cast<size_t>(dst_host)];
  if (from == to)
    return true;
  const SsspTree& tree = sssp_from(from);
  return tree.dist[static_cast<size_t>(to)] != kInf;
}

RoutingMemoryStats Platform::routing_memory() const {
  RoutingMemoryStats s;
  s.segment_bytes = seg_links_.capacity() * sizeof(LinkId) + segs_.capacity() * sizeof(SegRec);
  // unordered_map footprint approximation: bucket pointers + one heap node
  // per entry (key + value + chain pointer).
  s.segment_bytes += seg_dedup_.bucket_count() * sizeof(void*);
  for (const auto& [h, v] : seg_dedup_) {
    (void)h;
    s.segment_bytes += sizeof(std::uint64_t) + sizeof(std::vector<SegId>) + sizeof(void*) * 2 +
                       v.capacity() * sizeof(SegId);
  }
  s.segment_bytes += node_pair_segs_.bucket_count() * sizeof(void*) +
                     node_pair_segs_.size() * (sizeof(std::uint64_t) + sizeof(SegId) + sizeof(void*) * 2);
  s.pair_cache_bytes =
      route_keys_.capacity() * sizeof(std::uint64_t) + route_refs_.capacity() * sizeof(RouteRef);
  for (const auto& [src, tree] : sssp_cache_) {
    (void)src;
    s.sssp_bytes += tree.dist.capacity() * sizeof(double) + tree.prev_node.capacity() * sizeof(NodeId) +
                    tree.prev_link.capacity() * sizeof(LinkId) + sizeof(SsspTree) + sizeof(void*) * 3;
  }
  s.zone_bytes = zones_.capacity() * sizeof(ZoneRec) + host_zone_.capacity() * sizeof(std::int32_t);
  return s;
}

}  // namespace sg::platform
