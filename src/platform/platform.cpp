#include "platform/platform.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "xbt/config.hpp"
#include "xbt/exception.hpp"

namespace sg::platform {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

/// Fibonacci-style mix: pair keys are (src << 32 | dst), so the raw value is
/// far too structured for the linear-probing table's power-of-2 mask.
inline size_t route_hash(std::uint64_t key) {
  return static_cast<size_t>((key ^ (key >> 29)) * 0x9E3779B97F4A7C15ull >> 16);
}
}  // namespace

// ---------------------------------------------------------------------------
// Resolved-route index (open addressing over a stable deque)
// ---------------------------------------------------------------------------

Route* Platform::route_find(std::uint64_t key) const {
  if (route_keys_.empty())
    return nullptr;
  const size_t mask = route_keys_.size() - 1;
  for (size_t i = route_hash(key) & mask;; i = (i + 1) & mask) {
    if (route_keys_[i] == key)
      return &route_store_[route_slots_[i]];
    if (route_keys_[i] == kEmptyKey)
      return nullptr;
  }
}

void Platform::route_index_grow() const {
  const size_t new_cap = route_keys_.empty() ? 64 : route_keys_.size() * 2;
  std::vector<std::uint64_t> old_keys = std::move(route_keys_);
  std::vector<std::uint32_t> old_slots = std::move(route_slots_);
  route_keys_.assign(new_cap, kEmptyKey);
  route_slots_.assign(new_cap, 0);
  const size_t mask = new_cap - 1;
  for (size_t i = 0; i < old_keys.size(); ++i) {
    if (old_keys[i] == kEmptyKey)
      continue;
    size_t j = route_hash(old_keys[i]) & mask;
    while (route_keys_[j] != kEmptyKey)
      j = (j + 1) & mask;
    route_keys_[j] = old_keys[i];
    route_slots_[j] = old_slots[i];
  }
}

Route& Platform::route_slot(std::uint64_t key) const {
  // Grow at 70% load so probe runs stay short.
  if (route_keys_.empty() || route_store_.size() * 10 >= route_keys_.size() * 7)
    route_index_grow();
  const size_t mask = route_keys_.size() - 1;
  size_t i = route_hash(key) & mask;
  while (route_keys_[i] != kEmptyKey && route_keys_[i] != key)
    i = (i + 1) & mask;
  if (route_keys_[i] == key)
    return route_store_[route_slots_[i]];
  route_keys_[i] = key;
  route_slots_[i] = static_cast<std::uint32_t>(route_store_.size());
  route_store_.emplace_back();
  return route_store_.back();
}

NodeId Platform::add_host(const HostSpec& spec) {
  if (sealed_)
    throw xbt::InvalidArgument("platform is sealed");
  if (node_index_.count(spec.name))
    throw xbt::InvalidArgument("duplicate node name: " + spec.name);
  const NodeId id = static_cast<NodeId>(node_names_.size());
  node_names_.push_back(spec.name);
  node_index_.emplace(spec.name, id);
  nodes_.push_back({true, static_cast<int>(hosts_.size())});
  hosts_.push_back(spec);
  host_nodes_.push_back(id);
  return id;
}

NodeId Platform::add_host(const std::string& name, double speed_flops) {
  HostSpec spec;
  spec.name = name;
  spec.speed_flops = speed_flops;
  return add_host(spec);
}

NodeId Platform::add_router(const std::string& name) {
  if (sealed_)
    throw xbt::InvalidArgument("platform is sealed");
  if (node_index_.count(name))
    throw xbt::InvalidArgument("duplicate node name: " + name);
  const NodeId id = static_cast<NodeId>(node_names_.size());
  node_names_.push_back(name);
  node_index_.emplace(name, id);
  nodes_.push_back({false, -1});
  return id;
}

LinkId Platform::add_link(const LinkSpec& spec) {
  if (sealed_)
    throw xbt::InvalidArgument("platform is sealed");
  if (link_index_.count(spec.name))
    throw xbt::InvalidArgument("duplicate link name: " + spec.name);
  if (spec.bandwidth_Bps <= 0)
    throw xbt::InvalidArgument("link " + spec.name + ": bandwidth must be positive");
  if (spec.latency_s < 0)
    throw xbt::InvalidArgument("link " + spec.name + ": latency must be non-negative");
  links_.push_back(spec);
  const LinkId id = static_cast<LinkId>(links_.size() - 1);
  link_index_.emplace(spec.name, id);
  return id;
}

LinkId Platform::add_link(const std::string& name, double bandwidth_Bps, double latency_s, SharingPolicy policy) {
  LinkSpec spec;
  spec.name = name;
  spec.bandwidth_Bps = bandwidth_Bps;
  spec.latency_s = latency_s;
  spec.policy = policy;
  return add_link(spec);
}

void Platform::add_edge(NodeId a, NodeId b, LinkId link) {
  if (sealed_)
    throw xbt::InvalidArgument("platform is sealed");
  if (a < 0 || b < 0 || static_cast<size_t>(a) >= nodes_.size() || static_cast<size_t>(b) >= nodes_.size())
    throw xbt::InvalidArgument("add_edge: bad node id");
  if (link < 0 || static_cast<size_t>(link) >= links_.size())
    throw xbt::InvalidArgument("add_edge: bad link id");
  edges_.push_back({a, b, link});
}

void Platform::add_route(NodeId src, NodeId dst, std::vector<LinkId> links, bool symmetric) {
  if (!is_host(src) || !is_host(dst))
    throw xbt::InvalidArgument("add_route: endpoints must be hosts");
  for (LinkId l : links)
    if (l < 0 || static_cast<size_t>(l) >= links_.size())
      throw xbt::InvalidArgument("add_route: bad link id");
  double lat = 0;
  for (LinkId l : links)
    lat += links_[static_cast<size_t>(l)].latency_s;
  const int s = host_index(src);
  const int d = host_index(dst);
  route_slot(pair_key(s, d)) = Route{links, lat};
  if (symmetric) {
    std::vector<LinkId> rev(links.rbegin(), links.rend());
    route_slot(pair_key(d, s)) = Route{std::move(rev), lat};
  }
}

bool Platform::is_host(NodeId node) const {
  return node >= 0 && static_cast<size_t>(node) < nodes_.size() && nodes_[static_cast<size_t>(node)].host;
}

int Platform::host_index(NodeId node) const {
  if (!is_host(node))
    throw xbt::InvalidArgument("node is not a host: " + std::to_string(node));
  return nodes_[static_cast<size_t>(node)].host_index;
}

NodeId Platform::host_node(int host_index) const {
  return host_nodes_.at(static_cast<size_t>(host_index));
}

std::optional<NodeId> Platform::node_by_name(const std::string& name) const {
  auto it = node_index_.find(name);
  if (it == node_index_.end())
    return std::nullopt;
  return it->second;
}

std::optional<int> Platform::host_by_name(const std::string& name) const {
  auto node = node_by_name(name);
  if (!node || !is_host(*node))
    return std::nullopt;
  return host_index(*node);
}

std::optional<LinkId> Platform::link_by_name(const std::string& name) const {
  auto it = link_index_.find(name);
  if (it == link_index_.end())
    return std::nullopt;
  return it->second;
}

void Platform::seal() {
  if (sealed_)
    return;
  adj_.assign(nodes_.size(), {});
  for (const Edge& e : edges_) {
    adj_[static_cast<size_t>(e.a)].push_back({e.b, e.link});
    adj_[static_cast<size_t>(e.b)].push_back({e.a, e.link});
  }
  // SSSP-tree LRU capacity: configured floor, raised adaptively with the
  // platform size so that > 64 concurrently active sources (each tree is
  // O(nodes)) do not evict each other in a thrash loop.
  auto& cfg = xbt::Config::instance();
  cfg.declare("routing/sssp-cache", 64.0,
              "max memoized single-source shortest-path trees (LRU); "
              "seal() raises it to hosts/16 when that is larger");
  const double configured = std::max(1.0, cfg.get("routing/sssp-cache"));
  sssp_cache_cap_ = std::max(static_cast<size_t>(configured), hosts_.size() / 16);
  sealed_ = true;
}

void Platform::check_host_index(int host_index, const char* what) const {
  if (host_index < 0 || static_cast<size_t>(host_index) >= hosts_.size())
    throw xbt::InvalidArgument(std::string(what) + ": host index " + std::to_string(host_index) +
                               " out of range (platform has " + std::to_string(hosts_.size()) + " hosts)");
}

const Platform::SsspTree& Platform::sssp_from(NodeId src) const {
  auto hit = sssp_cache_.find(src);
  if (hit != sssp_cache_.end()) {
    hit->second.last_used = ++sssp_tick_;  // O(1) LRU refresh
    return hit->second;
  }

  if (sssp_cache_.size() >= sssp_cache_cap_) {
    // Evict the least recently used tree. The O(cap) scan only runs on a
    // miss, where the Dijkstra below dominates it anyway.
    auto lru = sssp_cache_.begin();
    for (auto it = std::next(lru); it != sssp_cache_.end(); ++it)
      if (it->second.last_used < lru->second.last_used)
        lru = it;
    sssp_cache_.erase(lru);
  }

  const size_t n_nodes = nodes_.size();
  SsspTree tree;
  tree.dist.assign(n_nodes, kInf);
  tree.prev_node.assign(n_nodes, -1);
  tree.prev_link.assign(n_nodes, -1);
  using QE = std::pair<double, NodeId>;
  std::priority_queue<QE, std::vector<QE>, std::greater<>> queue;
  tree.dist[static_cast<size_t>(src)] = 0.0;
  queue.push({0.0, src});
  while (!queue.empty()) {
    auto [d, u] = queue.top();
    queue.pop();
    if (d > tree.dist[static_cast<size_t>(u)])
      continue;
    for (auto [v, l] : adj_[static_cast<size_t>(u)]) {
      // Metric: latency, with a tiny per-hop epsilon so zero-latency LANs
      // still prefer fewer hops; ties implicitly favour first-declared edges.
      const double w = links_[static_cast<size_t>(l)].latency_s + 1e-9;
      if (tree.dist[static_cast<size_t>(u)] + w < tree.dist[static_cast<size_t>(v)]) {
        tree.dist[static_cast<size_t>(v)] = tree.dist[static_cast<size_t>(u)] + w;
        tree.prev_node[static_cast<size_t>(v)] = u;
        tree.prev_link[static_cast<size_t>(v)] = l;
        queue.push({tree.dist[static_cast<size_t>(v)], v});
      }
    }
  }

  tree.last_used = ++sssp_tick_;
  auto [ins, inserted] = sssp_cache_.emplace(src, std::move(tree));
  (void)inserted;
  return ins->second;
}

const Route& Platform::route(int src_host, int dst_host) const {
  check_host_index(src_host, "route");
  check_host_index(dst_host, "route");
  if (!sealed_)
    throw xbt::InvalidArgument("platform must be sealed before routing between " +
                               hosts_[static_cast<size_t>(src_host)].name + " and " +
                               hosts_[static_cast<size_t>(dst_host)].name + " (call Platform::seal())");

  if (const Route* cached = route_find(pair_key(src_host, dst_host)))
    return *cached;
  if (src_host == dst_host)
    return loopback_route_;  // a host talking to itself, absent an explicit self-route

  const NodeId src = host_nodes_[static_cast<size_t>(src_host)];
  const NodeId dst = host_nodes_[static_cast<size_t>(dst_host)];
  const SsspTree& tree = sssp_from(src);
  if (tree.dist[static_cast<size_t>(dst)] == kInf)
    throw xbt::InvalidArgument("no route between " + hosts_[static_cast<size_t>(src_host)].name + " and " +
                               hosts_[static_cast<size_t>(dst_host)].name +
                               ": hosts are in disconnected components");

  std::vector<LinkId> path;
  double lat = 0;
  for (NodeId v = dst; v != src; v = tree.prev_node[static_cast<size_t>(v)]) {
    path.push_back(tree.prev_link[static_cast<size_t>(v)]);
    lat += links_[static_cast<size_t>(tree.prev_link[static_cast<size_t>(v)])].latency_s;
  }
  std::reverse(path.begin(), path.end());
  Route& slot = route_slot(pair_key(src_host, dst_host));
  slot = Route{std::move(path), lat};
  return slot;
}

bool Platform::reachable(int src_host, int dst_host) const {
  check_host_index(src_host, "reachable");
  check_host_index(dst_host, "reachable");
  if (!sealed_)
    throw xbt::InvalidArgument("platform must be sealed before routing between " +
                               hosts_[static_cast<size_t>(src_host)].name + " and " +
                               hosts_[static_cast<size_t>(dst_host)].name + " (call Platform::seal())");
  if (route_find(pair_key(src_host, dst_host)) != nullptr)
    return true;
  if (src_host == dst_host)
    return true;
  const SsspTree& tree = sssp_from(host_nodes_[static_cast<size_t>(src_host)]);
  return tree.dist[static_cast<size_t>(host_nodes_[static_cast<size_t>(dst_host)])] != kInf;
}

}  // namespace sg::platform
