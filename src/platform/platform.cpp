#include "platform/platform.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "xbt/exception.hpp"

namespace sg::platform {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

NodeId Platform::add_host(const HostSpec& spec) {
  if (sealed_)
    throw xbt::InvalidArgument("platform is sealed");
  if (node_index_.count(spec.name))
    throw xbt::InvalidArgument("duplicate node name: " + spec.name);
  const NodeId id = static_cast<NodeId>(node_names_.size());
  node_names_.push_back(spec.name);
  node_index_.emplace(spec.name, id);
  nodes_.push_back({true, static_cast<int>(hosts_.size())});
  hosts_.push_back(spec);
  host_nodes_.push_back(id);
  return id;
}

NodeId Platform::add_host(const std::string& name, double speed_flops) {
  HostSpec spec;
  spec.name = name;
  spec.speed_flops = speed_flops;
  return add_host(spec);
}

NodeId Platform::add_router(const std::string& name) {
  if (sealed_)
    throw xbt::InvalidArgument("platform is sealed");
  if (node_index_.count(name))
    throw xbt::InvalidArgument("duplicate node name: " + name);
  const NodeId id = static_cast<NodeId>(node_names_.size());
  node_names_.push_back(name);
  node_index_.emplace(name, id);
  nodes_.push_back({false, -1});
  return id;
}

LinkId Platform::add_link(const LinkSpec& spec) {
  if (sealed_)
    throw xbt::InvalidArgument("platform is sealed");
  if (link_index_.count(spec.name))
    throw xbt::InvalidArgument("duplicate link name: " + spec.name);
  if (spec.bandwidth_Bps <= 0)
    throw xbt::InvalidArgument("link " + spec.name + ": bandwidth must be positive");
  if (spec.latency_s < 0)
    throw xbt::InvalidArgument("link " + spec.name + ": latency must be non-negative");
  links_.push_back(spec);
  const LinkId id = static_cast<LinkId>(links_.size() - 1);
  link_index_.emplace(spec.name, id);
  return id;
}

LinkId Platform::add_link(const std::string& name, double bandwidth_Bps, double latency_s, SharingPolicy policy) {
  LinkSpec spec;
  spec.name = name;
  spec.bandwidth_Bps = bandwidth_Bps;
  spec.latency_s = latency_s;
  spec.policy = policy;
  return add_link(spec);
}

void Platform::add_edge(NodeId a, NodeId b, LinkId link) {
  if (sealed_)
    throw xbt::InvalidArgument("platform is sealed");
  if (a < 0 || b < 0 || static_cast<size_t>(a) >= nodes_.size() || static_cast<size_t>(b) >= nodes_.size())
    throw xbt::InvalidArgument("add_edge: bad node id");
  if (link < 0 || static_cast<size_t>(link) >= links_.size())
    throw xbt::InvalidArgument("add_edge: bad link id");
  edges_.push_back({a, b, link});
}

void Platform::add_route(NodeId src, NodeId dst, std::vector<LinkId> links, bool symmetric) {
  if (!is_host(src) || !is_host(dst))
    throw xbt::InvalidArgument("add_route: endpoints must be hosts");
  for (LinkId l : links)
    if (l < 0 || static_cast<size_t>(l) >= links_.size())
      throw xbt::InvalidArgument("add_route: bad link id");
  double lat = 0;
  for (LinkId l : links)
    lat += links_[static_cast<size_t>(l)].latency_s;
  const int s = host_index(src);
  const int d = host_index(dst);
  route_cache_[pair_key(s, d)] = Route{links, lat};
  if (symmetric) {
    std::vector<LinkId> rev(links.rbegin(), links.rend());
    route_cache_[pair_key(d, s)] = Route{std::move(rev), lat};
  }
}

bool Platform::is_host(NodeId node) const {
  return node >= 0 && static_cast<size_t>(node) < nodes_.size() && nodes_[static_cast<size_t>(node)].host;
}

int Platform::host_index(NodeId node) const {
  if (!is_host(node))
    throw xbt::InvalidArgument("node is not a host: " + std::to_string(node));
  return nodes_[static_cast<size_t>(node)].host_index;
}

NodeId Platform::host_node(int host_index) const {
  return host_nodes_.at(static_cast<size_t>(host_index));
}

std::optional<NodeId> Platform::node_by_name(const std::string& name) const {
  auto it = node_index_.find(name);
  if (it == node_index_.end())
    return std::nullopt;
  return it->second;
}

std::optional<int> Platform::host_by_name(const std::string& name) const {
  auto node = node_by_name(name);
  if (!node || !is_host(*node))
    return std::nullopt;
  return host_index(*node);
}

std::optional<LinkId> Platform::link_by_name(const std::string& name) const {
  auto it = link_index_.find(name);
  if (it == link_index_.end())
    return std::nullopt;
  return it->second;
}

void Platform::seal() {
  if (sealed_)
    return;
  adj_.assign(nodes_.size(), {});
  for (const Edge& e : edges_) {
    adj_[static_cast<size_t>(e.a)].push_back({e.b, e.link});
    adj_[static_cast<size_t>(e.b)].push_back({e.a, e.link});
  }
  sealed_ = true;
}

void Platform::check_host_index(int host_index, const char* what) const {
  if (host_index < 0 || static_cast<size_t>(host_index) >= hosts_.size())
    throw xbt::InvalidArgument(std::string(what) + ": host index " + std::to_string(host_index) +
                               " out of range (platform has " + std::to_string(hosts_.size()) + " hosts)");
}

const Platform::SsspTree& Platform::sssp_from(NodeId src) const {
  auto hit = sssp_cache_.find(src);
  if (hit != sssp_cache_.end()) {
    // Refresh LRU position (the list is tiny — at most kSsspCacheCap).
    auto pos = std::find(sssp_lru_.begin(), sssp_lru_.end(), src);
    sssp_lru_.erase(pos);
    sssp_lru_.push_back(src);
    return hit->second;
  }

  if (sssp_cache_.size() >= kSsspCacheCap) {
    sssp_cache_.erase(sssp_lru_.front());
    sssp_lru_.erase(sssp_lru_.begin());
  }

  const size_t n_nodes = nodes_.size();
  SsspTree tree;
  tree.dist.assign(n_nodes, kInf);
  tree.prev_node.assign(n_nodes, -1);
  tree.prev_link.assign(n_nodes, -1);
  using QE = std::pair<double, NodeId>;
  std::priority_queue<QE, std::vector<QE>, std::greater<>> queue;
  tree.dist[static_cast<size_t>(src)] = 0.0;
  queue.push({0.0, src});
  while (!queue.empty()) {
    auto [d, u] = queue.top();
    queue.pop();
    if (d > tree.dist[static_cast<size_t>(u)])
      continue;
    for (auto [v, l] : adj_[static_cast<size_t>(u)]) {
      // Metric: latency, with a tiny per-hop epsilon so zero-latency LANs
      // still prefer fewer hops; ties implicitly favour first-declared edges.
      const double w = links_[static_cast<size_t>(l)].latency_s + 1e-9;
      if (tree.dist[static_cast<size_t>(u)] + w < tree.dist[static_cast<size_t>(v)]) {
        tree.dist[static_cast<size_t>(v)] = tree.dist[static_cast<size_t>(u)] + w;
        tree.prev_node[static_cast<size_t>(v)] = u;
        tree.prev_link[static_cast<size_t>(v)] = l;
        queue.push({tree.dist[static_cast<size_t>(v)], v});
      }
    }
  }

  auto [ins, inserted] = sssp_cache_.emplace(src, std::move(tree));
  sssp_lru_.push_back(src);
  (void)inserted;
  return ins->second;
}

const Route& Platform::route(int src_host, int dst_host) const {
  check_host_index(src_host, "route");
  check_host_index(dst_host, "route");
  if (!sealed_)
    throw xbt::InvalidArgument("platform must be sealed before routing between " +
                               hosts_[static_cast<size_t>(src_host)].name + " and " +
                               hosts_[static_cast<size_t>(dst_host)].name + " (call Platform::seal())");

  auto it = route_cache_.find(pair_key(src_host, dst_host));
  if (it != route_cache_.end())
    return it->second;
  if (src_host == dst_host)
    return loopback_route_;  // a host talking to itself, absent an explicit self-route

  const NodeId src = host_nodes_[static_cast<size_t>(src_host)];
  const NodeId dst = host_nodes_[static_cast<size_t>(dst_host)];
  const SsspTree& tree = sssp_from(src);
  if (tree.dist[static_cast<size_t>(dst)] == kInf)
    throw xbt::InvalidArgument("no route between " + hosts_[static_cast<size_t>(src_host)].name + " and " +
                               hosts_[static_cast<size_t>(dst_host)].name +
                               ": hosts are in disconnected components");

  std::vector<LinkId> path;
  double lat = 0;
  for (NodeId v = dst; v != src; v = tree.prev_node[static_cast<size_t>(v)]) {
    path.push_back(tree.prev_link[static_cast<size_t>(v)]);
    lat += links_[static_cast<size_t>(tree.prev_link[static_cast<size_t>(v)])].latency_s;
  }
  std::reverse(path.begin(), path.end());
  auto [ins, inserted] = route_cache_.emplace(pair_key(src_host, dst_host), Route{std::move(path), lat});
  (void)inserted;
  return ins->second;
}

bool Platform::reachable(int src_host, int dst_host) const {
  check_host_index(src_host, "reachable");
  check_host_index(dst_host, "reachable");
  if (!sealed_)
    throw xbt::InvalidArgument("platform must be sealed before routing between " +
                               hosts_[static_cast<size_t>(src_host)].name + " and " +
                               hosts_[static_cast<size_t>(dst_host)].name + " (call Platform::seal())");
  if (route_cache_.count(pair_key(src_host, dst_host)))
    return true;
  if (src_host == dst_host)
    return true;
  const SsspTree& tree = sssp_from(host_nodes_[static_cast<size_t>(src_host)]);
  return tree.dist[static_cast<size_t>(host_nodes_[static_cast<size_t>(dst_host)])] != kInf;
}

}  // namespace sg::platform
