/// \file builders.hpp
/// Programmatic builders for the platform shapes used throughout the paper's
/// examples and our benches: commodity clusters (switch + backbone), simple
/// dumbbells, and the paper's client/server LAN (hub + switch + router).
#pragma once

#include "platform/platform.hpp"

namespace sg::platform {

struct ClusterSpec {
  std::string prefix = "node";
  int count = 8;
  double host_speed = 1e9;          ///< flop/s
  double link_bandwidth = 1.25e8;   ///< B/s per up/down link
  double link_latency = 5e-5;
  double backbone_bandwidth = 1.25e9;
  double backbone_latency = 5e-4;
  bool backbone_fatpipe = false;
};

/// Star cluster: each host has a private link to a central switch; traffic
/// leaving the cluster additionally crosses the backbone link. Built on a
/// cluster zone, so member routes are O(1)-composed with no per-pair state.
Platform make_cluster(const ClusterSpec& spec);

/// Two hosts joined by a single shared link (the minimal contention scenario).
Platform make_dumbbell(double speed, double bandwidth, double latency);

/// The paper's Gantt-chart platform: `n_clients` client hosts on a hub
/// (one shared LAN segment) and `n_servers` servers behind a switch, joined
/// by a router — concurrent client flows interfere on the shared segment.
Platform make_client_server_lan(int n_clients, int n_servers,
                                double client_speed = 5e8, double server_speed = 2e9,
                                double lan_bandwidth = 1.25e7, double lan_latency = 1e-4);

}  // namespace sg::platform
