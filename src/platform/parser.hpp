/// \file parser.hpp
/// Text format for platform files. Line-oriented, '#' comments:
///
///   host    node1 speed:2Gf [avail:<file|inline>] [state:<file>]
///   router  r1
///   link    l1 bw:125MBps lat:50us [fatpipe]
///   edge    node1 r1 l1
///   route   node1 node2 l1 l2 l3 [oneway]
///   cluster c0 hosts:1024 speed:1Gf bw:125MBps lat:50us backbone:10GBps [blat:500us] [fatpipe] [prefix:c0-]
///
/// `cluster` creates a cluster zone (see platform.hpp): hosts `<prefix><i>`
/// (prefix defaults to the cluster name) behind private links and an
/// optional backbone; the zone gateway `<name>-out` (or the `<name>-switch`
/// hub when no backbone is given) can be referenced by later edge lines.
///
/// Inline traces use avail:"0 1.0;5 0.5;P:10" (time value pairs separated by
/// ';', optional P:<periodicity>).
#pragma once

#include <string>

#include "platform/platform.hpp"

namespace sg::platform {

/// Parse a platform description from text. Returns a sealed platform.
Platform parse_platform(const std::string& text);

/// Load and parse a platform file from disk.
Platform load_platform(const std::string& path);

/// Serialize a platform back to the text format (graph edges + hosts +
/// links; derived routes are not dumped).
std::string dump_platform(const Platform& p);

}  // namespace sg::platform
