/// \file platform.hpp
/// Virtual platform description: hosts (computing resources), links
/// (point-to-point communication resources), routers, multi-hop routes, and
/// hierarchical zones.
///
/// Three routing styles are supported, matching the paper's "simulation of
/// complex communications (multi-hop routing)":
///  * explicit routes:  add_route(src, dst, {links...})
///  * graph mode:       add_edge(nodeA, nodeB, link) + seal() validates the
///                      graph; latency-shortest paths are then resolved
///                      lazily, on first use of each (src, dst) pair.
///  * zones:            add_cluster_zone() groups hosts under a routing
///                      *rule* — a cluster member's route is composed in O(1)
///                      from its private up-link, the optional backbone, and
///                      the peer's down-link, with zero Dijkstra and zero
///                      per-pair state. Inter-zone routes compose
///                      src->gateway + gateway->gateway + gateway->dst.
/// Topologies may also be imported from generators (see sg::topo, BRITE).
///
/// ## Interned route segments
///
/// A resolved route is not a per-pair vector of links. It is a RouteRef:
/// three segment ids (up, middle, down) plus the precomputed latency.
/// Segments — short link sequences — live in a global arena and are
/// deduplicated, so a 100k-host cluster holds O(hosts) routing state (one
/// up/down segment per member) instead of O(pairs) materialized paths.
/// route() returns a RouteView, a cheap cursor over the (up to three)
/// segments; hot paths iterate links through it instead of assuming one
/// contiguous vector.
///
/// ## Lazy on-demand routing (graph mode)
///
/// seal() is O(nodes + edges): it only validates the description and builds
/// the adjacency structure. The first route(src, dst) query between hosts
/// that no zone rule covers runs Dijkstra from `src` and memoizes the whole
/// single-source shortest-path tree; the resolved pair is cached as a
/// RouteRef (24 bytes + the interned segment, shared across pairs with the
/// same path). Explicit add_route() entries always win over both zone
/// composition and graph-derived paths, and a host talking to itself uses
/// the empty loopback route unless an explicit self-route overrides it.
///
/// The caches are an implementation detail: route() stays `const`. They make
/// routing non-thread-safe; resolve routes from a single thread (the
/// simulation kernel is single-threaded anyway).
///
/// The SSSP-tree cache is LRU-bounded; its capacity is configurable via the
/// `routing/sssp-cache` config key (default 64) and adaptively raised to
/// hosts/16 at seal() time, so platforms with many concurrently active
/// sources do not thrash the cache. Cluster-zone traffic never touches it.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/trace.hpp"
#include "xbt/settings.hpp"

namespace sg::platform {

/// Max memoized single-source shortest-path trees (LRU); Platform::seal()
/// raises the effective capacity to hosts/16 when that is larger.
inline constexpr config::IntKey kCfgSsspCache{"routing/sssp-cache"};

using NodeId = int;  ///< index of a netpoint (host or router)
using LinkId = int;  ///< index of a link
using ZoneId = int;  ///< index of a zone
using SegId = std::int32_t;  ///< index of an interned route segment

constexpr SegId kNoSeg = -1;  ///< absent route piece (RouteRef)

/// How concurrent flows share a link's bandwidth.
enum class SharingPolicy {
  kShared,   ///< capacity divided among flows (normal LAN/WAN link)
  kFatpipe,  ///< each flow independently capped at capacity (backbone)
};

/// Routing rule of a zone.
enum class ZoneKind {
  kCluster,   ///< private link per member + optional backbone; O(1) composition
  kDijkstra,  ///< graph zone: members routed through the flat graph, as ever
};

struct HostSpec {
  std::string name;
  double speed_flops = 1e9;               ///< peak speed, flop/s
  sg::trace::Trace availability;          ///< scales speed over time (empty = 1.0)
  sg::trace::Trace state;                 ///< 1 = up, 0 = down (empty = always up)
  /// Membership trace: 1 = member, 0 = departed. Unlike `state` (a flap the
  /// engine applies as capacity 0), churn promotes to whole-host departure /
  /// return via the kernel membership driver (kernel/membership.hpp); the
  /// engine itself never schedules it.
  sg::trace::Trace churn;
};

struct LinkSpec {
  std::string name;
  double bandwidth_Bps = 1.25e8;          ///< byte/s
  double latency_s = 1e-4;                ///< seconds
  SharingPolicy policy = SharingPolicy::kShared;
  sg::trace::Trace availability;          ///< scales bandwidth over time
  sg::trace::Trace state;                 ///< 1 = up, 0 = down
};

/// A commodity cluster zone: `count` hosts, each with a private up/down link
/// to the zone hub, and (optionally) a backbone link between the hub and the
/// zone gateway. Member m is named `<host_prefix><m>` (host_prefix defaults
/// to `name`), its link `<host_prefix><m>-link`; the hub is `<name>-switch`.
/// With a backbone the gateway is the router `<name>-out` behind the
/// `<name>-backbone` link; without one (backbone_bandwidth <= 0) the hub
/// itself is the gateway. Intra-zone routes are [up(i), up(j)] — the
/// backbone is only crossed by traffic leaving the zone, matching the
/// historical make_cluster() star shape.
struct ClusterZoneSpec {
  std::string name = "cluster";
  std::string host_prefix;          ///< empty: use `name`
  int count = 8;
  double host_speed = 1e9;          ///< flop/s
  double link_bandwidth = 1.25e8;   ///< B/s per private up/down link
  double link_latency = 5e-5;
  double backbone_bandwidth = 1.25e9;  ///< <= 0: no backbone (hub is gateway)
  double backbone_latency = 5e-4;
  bool backbone_fatpipe = false;
};

/// A resolved route between two hosts: up to three interned segments and the
/// precomputed latency. 24 bytes + shared segment storage, vs. the old
/// per-pair std::vector<LinkId>.
struct RouteRef {
  SegId up = kNoSeg;    ///< source-side piece (e.g. member -> gateway)
  SegId mid = kNoSeg;   ///< gateway -> gateway (or the whole graph path)
  SegId down = kNoSeg;  ///< gateway -> destination member
  double latency = 0.0; ///< sum of link latencies (precomputed)
};

/// Cheap cursor over a resolved route's links. Returned by value from
/// Platform::route(); spans point into the platform's segment arena, so a
/// view is invalidated by the next route resolution on the same platform
/// (hot paths consume it immediately; materialize with links() otherwise).
class RouteView {
public:
  RouteView() = default;

  double latency() const { return latency_; }
  size_t size() const {
    return static_cast<size_t>(spans_[0].n) + spans_[1].n + spans_[2].n;
  }
  bool empty() const { return size() == 0; }
  /// Materialize the link sequence (tests, tools, packet-level replay).
  std::vector<LinkId> links() const {
    std::vector<LinkId> out;
    out.reserve(size());
    for (const Span& s : spans_)
      out.insert(out.end(), s.b, s.b + s.n);
    return out;
  }

  class iterator {
  public:
    using value_type = LinkId;
    LinkId operator*() const { return view_->spans_[seg_].b[idx_]; }
    iterator& operator++() {
      ++idx_;
      if (idx_ >= view_->spans_[seg_].n) {
        idx_ = 0;
        ++seg_;
        skip_empty();
      }
      return *this;
    }
    bool operator==(const iterator& o) const { return seg_ == o.seg_ && idx_ == o.idx_; }
    bool operator!=(const iterator& o) const { return !(*this == o); }

  private:
    friend class RouteView;
    iterator(const RouteView* v, int seg) : view_(v), seg_(seg) { skip_empty(); }
    void skip_empty() {
      while (seg_ < 3 && view_->spans_[seg_].n == 0)
        ++seg_;
    }
    const RouteView* view_;
    int seg_;
    std::uint32_t idx_ = 0;
  };

  iterator begin() const { return iterator(this, 0); }
  iterator end() const { return iterator(this, 3); }

private:
  friend class Platform;
  struct Span {
    const LinkId* b = nullptr;
    std::uint32_t n = 0;
  };
  Span spans_[3];
  double latency_ = 0.0;
};

/// How the platform partitions into simulation shards, computed at seal()
/// time so the engine can size its per-shard solvers and event heaps up
/// front. Shard 0 is the *backbone* shard: every resource that is not
/// interior to a single zone (WAN links, gateway/backbone links, unzoned
/// hosts, routers' links) lives there, and it is the only shard a
/// cross-zone route is guaranteed to touch. Each zone gets its own shard
/// holding its member hosts and zone-interior links, so intra-zone churn
/// never touches — or even reads — another zone's solver state.
struct ShardMap {
  int shard_count = 1;                    ///< zones + 1; >= 1 (shard 0 = backbone)
  std::vector<std::int32_t> zone_shard;   ///< zone id -> shard id (zone id + 1)
  std::vector<std::int32_t> host_shard;   ///< host index -> shard id
  std::vector<std::int32_t> link_shard;   ///< link id -> shard id
  /// Backbone-shard links adjacent to a zone gateway — the constraints
  /// through which all cross-zone coupling flows (per-zone stats, tests).
  std::vector<LinkId> gateway_links;
};

/// Routing-state footprint, for benches and the scaling metrics: everything
/// the platform holds to answer route(), split by structure. O(hosts +
/// resolved pairs); cluster-zone traffic adds nothing to the pair cache.
struct RoutingMemoryStats {
  size_t segment_bytes = 0;    ///< interned segment arena + dedup index
  size_t pair_cache_bytes = 0; ///< resolved (src,dst) -> RouteRef table
  size_t sssp_bytes = 0;       ///< memoized single-source shortest-path trees
  size_t zone_bytes = 0;       ///< zone records + host -> zone map
  size_t total() const { return segment_bytes + pair_cache_bytes + sssp_bytes + zone_bytes; }
};

class Platform {
public:
  // -- construction ---------------------------------------------------------
  NodeId add_host(const HostSpec& spec);
  NodeId add_host(const std::string& name, double speed_flops);
  NodeId add_router(const std::string& name);
  LinkId add_link(const LinkSpec& spec);
  LinkId add_link(const std::string& name, double bandwidth_Bps, double latency_s,
                  SharingPolicy policy = SharingPolicy::kShared);

  /// Graph mode: declare that `link` connects netpoints a and b (undirected).
  /// Endpoints may not be cluster-zone members or hubs: a cluster's only
  /// connection to the rest of the platform is its gateway (that invariant is
  /// what makes O(1) route composition exact).
  void add_edge(NodeId a, NodeId b, LinkId link);

  /// Explicit mode: full route between two hosts. When symmetric, the
  /// reversed route serves dst->src as well. Explicit routes always win over
  /// zone composition and graph-derived paths.
  void add_route(NodeId src, NodeId dst, std::vector<LinkId> links, bool symmetric = true);

  /// Create a cluster zone: `spec.count` hosts, their private links, the hub,
  /// and (optionally) backbone + gateway, all named after the spec. The
  /// zone's edges are part of the flat graph too (export, packet-level and
  /// graph-mode tools keep working); route() never walks them for
  /// zone-covered pairs. Returns the zone id; member host indices are
  /// contiguous from zone_first_host().
  ZoneId add_cluster_zone(const ClusterZoneSpec& spec);

  /// Create an empty Dijkstra (graph) zone: membership metadata over hosts
  /// routed through the flat graph exactly like unzoned hosts (cluster
  /// traffic included — it runs Dijkstra from the cluster gateway straight
  /// to the member). `gateway` (a node in the flat graph) is recorded as
  /// the zone's conventional attach point for zone_gateway() introspection;
  /// it does not constrain routing.
  ZoneId add_graph_zone(const std::string& name, NodeId gateway);

  /// Assign a host to a graph zone (cluster zones own their members).
  void zone_add_host(ZoneId zone, int host_index);

  /// Freeze the topology: validate and build the routing adjacency.
  /// O(nodes + edges) — shortest paths are resolved lazily by route().
  void seal();
  bool sealed() const { return sealed_; }

  // -- dynamic membership (post-seal) ----------------------------------------
  /// Join a new member host to a sealed cluster zone: host + private uplink +
  /// hub edge, named after the zone spec (`<prefix><N>` where N counts
  /// members ever created; pass `name` to override, `speed_flops` > 0 to
  /// override the spec's host speed). Every seal-time structure is updated in
  /// place in O(affected): the shard map gains the member and its uplink, the
  /// member's route segments are appended to the arena, and each cached SSSP
  /// tree is extended with the one new leaf — no re-seal, no flush. Returns
  /// the new host index.
  int join_host(ZoneId zone, const std::string& name = "", double speed_flops = -1.0);
  /// Join a new host to the flat graph of a sealed platform, attached to
  /// `attach` (any non-cluster-interior node) through a fresh private
  /// `uplink`. Same O(affected) incremental update. Returns the host index.
  int join_host(const HostSpec& spec, NodeId attach, const LinkSpec& uplink);
  /// Depart a host at (simulated) time `at`: the host stays in every index —
  /// ids remain valid, names stay taken — but route()/reachable() refuse it
  /// ("departed at t=…") and shortest paths stop transiting it. Leaf hosts
  /// (the churn case: cluster members, joined hosts) cost O(1); a departure
  /// that removes a *transit* node flushes only the path caches, which
  /// rebuild lazily. Use rejoin_host() to bring the host back.
  void leave_host(int host_index, double at = 0.0);
  /// Return a departed host to the platform: presence flips back, routes
  /// resolve again; cached state invalidated on departure rebuilds lazily.
  void rejoin_host(int host_index);
  /// Is the host currently a member (true for all hosts until leave_host)?
  bool host_present(int host_index) const {
    return host_present_[static_cast<size_t>(host_index)] != 0;
  }
  /// Time of the host's (latest) departure; meaningful while !host_present().
  double host_departed_at(int host_index) const {
    return host_departed_at_[static_cast<size_t>(host_index)];
  }
  size_t departed_host_count() const { return departed_count_; }
  /// Throws InvalidArgument naming the host and its departure time when the
  /// host has left the platform (the "departed at t=…" contract); no-op for
  /// present hosts. `what` prefixes the message ("route", "set_host_state"…).
  void check_host_present(int host_index, const char* what) const;
  /// The host's private links: links whose only graph edge touches the host
  /// (cluster uplinks, joined-host uplinks). These die and return with the
  /// host; shared buses do not qualify.
  std::vector<LinkId> host_private_links(int host_index) const;

  // -- lookup ---------------------------------------------------------------
  size_t host_count() const { return hosts_.size(); }
  size_t link_count() const { return links_.size(); }
  size_t node_count() const { return node_names_.size(); }
  size_t zone_count() const { return zones_.size(); }

  bool is_host(NodeId node) const;
  /// Host index (0..host_count) for a host node id.
  int host_index(NodeId node) const;
  /// Node id of the i-th host.
  NodeId host_node(int host_index) const;

  const HostSpec& host(int host_index) const { return hosts_[static_cast<size_t>(host_index)]; }
  HostSpec& host_mutable(int host_index) { return hosts_[static_cast<size_t>(host_index)]; }
  const LinkSpec& link(LinkId id) const { return links_[static_cast<size_t>(id)]; }
  LinkSpec& link_mutable(LinkId id) { return links_[static_cast<size_t>(id)]; }

  const std::string& node_name(NodeId node) const { return node_names_[static_cast<size_t>(node)]; }

  std::optional<NodeId> node_by_name(const std::string& name) const;
  std::optional<int> host_by_name(const std::string& name) const;
  std::optional<LinkId> link_by_name(const std::string& name) const;

  // -- zones ----------------------------------------------------------------
  /// Zone of a host (by host index), or -1 when the host is in no zone.
  ZoneId zone_of_host(int host_index) const {
    return host_zone_[static_cast<size_t>(host_index)];
  }
  ZoneKind zone_kind(ZoneId zone) const { return zones_[static_cast<size_t>(zone)].kind; }
  const std::string& zone_name(ZoneId zone) const { return zones_[static_cast<size_t>(zone)].name; }
  /// Node where inter-zone traffic enters/leaves the zone.
  NodeId zone_gateway(ZoneId zone) const { return zones_[static_cast<size_t>(zone)].gateway; }
  /// First member host index of a cluster zone (members are contiguous).
  int zone_first_host(ZoneId zone) const { return zones_[static_cast<size_t>(zone)].first_host; }
  int zone_host_count(ZoneId zone) const { return zones_[static_cast<size_t>(zone)].count; }
  std::optional<ZoneId> zone_by_name(const std::string& name) const;
  /// The ClusterZoneSpec a cluster zone was created from (parser round-trip).
  const ClusterZoneSpec& cluster_zone_spec(ZoneId zone) const;

  /// Route between two hosts (by host index), composed or resolved on
  /// demand. Cluster pairs are composed in O(1) with no per-pair state; the
  /// returned view is invalidated by the next resolution (consume it
  /// immediately, or materialize with links()). Throws xbt::InvalidArgument
  /// (naming both hosts) when the platform is not sealed or the pair is
  /// unreachable.
  RouteView route(int src_host, int dst_host) const;
  bool reachable(int src_host, int dst_host) const;

  /// Zone-based shard partition (computed by seal(); throws before that).
  const ShardMap& shard_map() const;

  /// All (undirected) graph edges, for export/inspection.
  struct Edge { NodeId a; NodeId b; LinkId link; };
  const std::vector<Edge>& edges() const { return edges_; }

  // -- cache introspection (tests/benches) ----------------------------------
  /// Number of (src, dst) pairs stored in the route cache (explicit routes +
  /// memoized graph resolutions; zone-composed pairs never enter it).
  size_t resolved_route_count() const { return route_count_; }
  /// Number of interned link segments in the arena.
  size_t interned_segment_count() const { return segs_.size(); }
  /// Number of memoized single-source shortest-path trees currently held.
  size_t cached_sssp_tree_count() const { return sssp_cache_.size(); }
  /// Capacity of the SSSP-tree LRU: max(routing/sssp-cache, hosts/16),
  /// fixed at seal() time.
  size_t sssp_cache_capacity() const { return sssp_cache_cap_; }
  /// Bytes currently devoted to answering route() queries.
  RoutingMemoryStats routing_memory() const;

private:
  struct NodeRec {
    bool host = false;
    int host_index = -1;
  };

  /// An interned link sequence in the flat arena.
  struct SegRec {
    std::uint32_t off = 0;  ///< into seg_links_
    std::uint32_t len = 0;
    double latency = 0.0;   ///< sum of the segment's link latencies
  };

  struct ZoneRec {
    std::string name;
    ZoneKind kind = ZoneKind::kDijkstra;
    NodeId gateway = -1;
    NodeId hub = -1;          ///< cluster switch node (-1 for graph zones)
    int first_host = 0;       ///< cluster: first member host index
    int count = 0;            ///< cluster: member count
    LinkId first_uplink = -1; ///< cluster: member m's private link is first_uplink + m
    LinkId backbone = -1;
    /// Per-member interned segments, allocated contiguously at creation:
    /// member m's intra piece is seg_intra0 + m ([up(m)]), its leave piece
    /// seg_out0 + m ([up(m), backbone]) and its enter piece seg_in0 + m
    /// ([backbone, up(m)]). Without a backbone all three alias [up(m)].
    SegId seg_intra0 = kNoSeg;
    SegId seg_out0 = kNoSeg;
    SegId seg_in0 = kNoSeg;
    double up_latency = 0.0;
    double backbone_latency = 0.0;
    ClusterZoneSpec spec;     ///< as created (dump/round-trip)

    /// Members joined after seal(). Their host indices are not contiguous
    /// with the base range [first_host, first_host + spec.count), so each
    /// carries its own uplink + segment triple; `count` includes them.
    struct ExtraMember {
      int host = -1;
      LinkId uplink = -1;
      SegId seg_intra = kNoSeg;
      SegId seg_out = kNoSeg;
      SegId seg_in = kNoSeg;
    };
    std::vector<ExtraMember> extra;
    std::unordered_map<int, size_t> extra_index;  ///< host index -> extra slot
  };

  /// Single-source shortest-path tree, indexed by NodeId.
  struct SsspTree {
    std::vector<double> dist;
    std::vector<NodeId> prev_node;
    std::vector<LinkId> prev_link;
    std::uint64_t last_used = 0;  ///< LRU tick; hits bump it in O(1)
  };

  static std::uint64_t pair_key(int src_host, int dst_host) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src_host)) << 32) |
           static_cast<std::uint32_t>(dst_host);
  }

  void check_host_index(int host_index, const char* what) const;
  void throw_no_route(int src_host, int dst_host) const;
  /// Sealed-state-bypassing guts of add_host/add_link, shared with the
  /// post-seal join paths (which update the seal-time structures themselves).
  /// `defer_index` skips the name-map insert (dynamic joins with generated
  /// names, unique by construction); the next by-name lookup drains it.
  NodeId host_node_internal(const HostSpec& spec, bool defer_index = false);
  LinkId link_internal(const LinkSpec& spec, bool defer_index = false);
  /// The member's segment triple (intra / leave / enter), whether it is a
  /// base member (contiguous id math) or a post-seal extra (own records).
  void member_segs(const ZoneRec& zone, int host_index, SegId* intra, SegId* out, SegId* in) const;
  /// May shortest paths run *through* this node? False only for departed
  /// hosts; a departed host can still be a path endpoint (presence is the
  /// caller's check).
  bool node_transitable(NodeId node) const {
    const NodeRec& rec = nodes_[static_cast<size_t>(node)];
    return !rec.host || host_present_[static_cast<size_t>(rec.host_index)] != 0;
  }
  /// Extend every cached SSSP tree with the just-joined leaf node (exact:
  /// the only path to a leaf is through its attach point). O(cached trees).
  void extend_sssp_trees(NodeId attach, LinkId uplink) const;
  /// Departure/return of a transit-capable node: drop the path caches
  /// (SSSP trees, node-pair segments, memoized graph routes) and re-seed
  /// the route table from the explicit routes, which always survive.
  void flush_transit_caches() const;
  /// Memoized Dijkstra from `src` (latency metric, tiny per-hop epsilon so
  /// zero-latency LANs still prefer fewer hops). LRU-bounded: at most
  /// kSsspCacheCap trees are kept, each O(nodes) — resolved RouteRefs are
  /// cached forever, so evicting a tree only costs re-running Dijkstra.
  const SsspTree& sssp_from(NodeId src) const;

  /// Intern a link sequence, deduplicated: identical sequences share one
  /// segment. O(len) on a hit.
  SegId intern_segment(const LinkId* links, size_t n) const;
  /// Append a segment without a dedup-index entry (cluster member pieces:
  /// each contains a unique private link, so they can never recur — skipping
  /// the index keeps the arena at a few dozen bytes per host).
  SegId append_segment(const LinkId* links, size_t n) const;
  /// Graph path between two nodes as an interned segment, memoized per node
  /// pair: O(zones^2) entries for zone-to-zone traffic, plus one per
  /// (gateway, outside endpoint) actually contacted — never O(member
  /// pairs), since all members of a cluster share their gateway's entries.
  /// Returns false when the nodes are disconnected.
  bool node_path_segment(NodeId from, NodeId to, SegId* seg) const;
  RouteView make_view(const RouteRef& ref) const;
  /// Zone-rule composition for a pair not in the route cache. Returns false
  /// when no zone rule covers the pair (fall through to graph resolution).
  bool compose_zone_route(int src_host, int dst_host, RouteRef* out) const;

  std::vector<std::string> node_names_;
  std::vector<NodeRec> nodes_;
  std::vector<HostSpec> hosts_;
  std::vector<NodeId> host_nodes_;
  std::vector<LinkSpec> links_;
  std::vector<Edge> edges_;
  // Name -> id maps, interned lazily for dynamic joins: a generated-name
  // join_host pushes the spec without touching these (the O(affected)
  // promise covers the hot churn path), and the next by-name lookup drains
  // [*_index_synced_, size) in. Membership mutations run in the engine's
  // serial section; lookups may be concurrent with each other, hence the
  // double-checked atomic + mutex in drain_node_index()/drain_link_index().
  mutable std::unordered_map<std::string, NodeId> node_index_;  ///< name -> node id
  mutable std::unordered_map<std::string, LinkId> link_index_;  ///< name -> link id
  /// Copyable atomic counter / mutex so Platform keeps its value semantics
  /// (tests copy platforms; Engine takes one by move).
  struct SyncedCount {
    std::atomic<size_t> v{0};
    SyncedCount() = default;
    SyncedCount(const SyncedCount& o) : v(o.v.load(std::memory_order_acquire)) {}
    SyncedCount& operator=(const SyncedCount& o) {
      v.store(o.v.load(std::memory_order_acquire), std::memory_order_release);
      return *this;
    }
  };
  struct IndexMutex {
    std::mutex m;
    IndexMutex() = default;
    IndexMutex(const IndexMutex&) {}
    IndexMutex& operator=(const IndexMutex&) { return *this; }
  };
  mutable SyncedCount node_index_synced_;  ///< node_names_ entries interned
  mutable SyncedCount link_index_synced_;  ///< links_ entries interned
  mutable IndexMutex index_mutex_;
  void drain_node_index() const;
  void drain_link_index() const;

  std::vector<ZoneRec> zones_;
  std::vector<std::int32_t> host_zone_;  ///< host index -> zone id (-1: none)

  // -- dynamic membership ----------------------------------------------------
  std::vector<char> host_present_;        ///< host index -> currently a member?
  std::vector<double> host_departed_at_;  ///< last departure time (valid when absent)
  size_t departed_count_ = 0;
  /// Graph edges per link, built by seal() and maintained by joins: a link
  /// with degree 1 is private to its single endpoint (host_private_links).
  std::vector<std::int32_t> link_degree_;
  /// add_route() entries, kept verbatim so a transit flush can re-seed the
  /// route table without the caller's link vectors.
  struct ExplicitRoute {
    int src = -1;
    int dst = -1;
    RouteRef ref;
  };
  std::vector<ExplicitRoute> explicit_routes_;

  /// adjacency: node -> (neighbor, link); built by seal().
  std::vector<std::vector<std::pair<NodeId, LinkId>>> adj_;

  // -- interned segment arena ------------------------------------------------
  mutable std::vector<LinkId> seg_links_;  ///< flat storage, segments back to back
  mutable std::vector<SegRec> segs_;
  /// Dedup index: content hash -> candidate segment ids (collisions chain).
  mutable std::unordered_map<std::uint64_t, std::vector<SegId>> seg_dedup_;
  /// Memoized node -> node graph paths (gateway traffic), keyed like pairs.
  mutable std::unordered_map<std::uint64_t, SegId> node_pair_segs_;

  /// Resolved routes keyed by (src, dst) host-index pair. Explicit routes
  /// are inserted eagerly (they pre-empt zone composition and lazy
  /// resolution); graph-derived routes are added on first query. The index
  /// is open-addressing (linear probing over a power-of-2 table): a lookup
  /// is one probe run through a flat array instead of a hash-node chase —
  /// route() is on the hot path of every communication start. The mapped
  /// value is a 24-byte RouteRef stored inline; the links themselves live in
  /// the shared segment arena.
  static constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};
  mutable std::vector<std::uint64_t> route_keys_;  ///< kEmptyKey = free slot
  mutable std::vector<RouteRef> route_refs_;       ///< parallel to route_keys_
  mutable size_t route_count_ = 0;

  const RouteRef* route_find(std::uint64_t key) const;
  /// Existing record for key, or a freshly inserted empty one.
  RouteRef& route_slot(std::uint64_t key) const;
  void route_index_grow() const;

  void build_shard_map();
  ShardMap shard_map_;  ///< built by seal()

  size_t sssp_cache_cap_ = 64;  ///< adjusted by seal() (config + host count)
  /// LRU by last_used tick: a cache hit is an O(1) counter bump; eviction
  /// scans for the minimum, which a Dijkstra run (the reason we are
  /// evicting) dwarfs even at the hosts/16 adaptive capacity.
  mutable std::unordered_map<NodeId, SsspTree> sssp_cache_;
  mutable std::uint64_t sssp_tick_ = 0;

  bool sealed_ = false;
};

}  // namespace sg::platform
