/// \file platform.hpp
/// Virtual platform description: hosts (computing resources), links
/// (point-to-point communication resources), routers, and multi-hop routes.
///
/// Two routing styles are supported, matching the paper's "simulation of
/// complex communications (multi-hop routing)":
///  * explicit routes:  add_route(src, dst, {links...})
///  * graph mode:       add_edge(nodeA, nodeB, link) + seal() validates the
///                      graph; latency-shortest paths are then resolved
///                      lazily, on first use of each (src, dst) pair.
/// Topologies may also be imported from generators (see sg::topo, BRITE).
///
/// ## Lazy on-demand routing
///
/// seal() is O(nodes + edges): it only validates the description and builds
/// the adjacency structure. The first route(src, dst) query runs Dijkstra
/// from `src` and memoizes the whole single-source shortest-path tree, so
/// the next query from the same source is O(path length). Resolved routes
/// are additionally stored in a per-pair cache with stable references:
/// a `const Route&` obtained from route() stays valid for the lifetime of
/// the platform, no matter how many other pairs are resolved later.
/// Explicit add_route() entries always win over graph-derived paths, and a
/// host talking to itself uses the empty loopback route unless an explicit
/// self-route overrides it.
///
/// The caches are an implementation detail: route() stays `const`. They make
/// routing non-thread-safe; resolve routes from a single thread (the
/// simulation kernel is single-threaded anyway).
///
/// The SSSP-tree cache is LRU-bounded; its capacity is configurable via the
/// `routing/sssp-cache` config key (default 64) and adaptively raised to
/// hosts/16 at seal() time, so platforms with many concurrently active
/// sources do not thrash the cache.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "trace/trace.hpp"

namespace sg::platform {

using NodeId = int;  ///< index of a netpoint (host or router)
using LinkId = int;  ///< index of a link

/// How concurrent flows share a link's bandwidth.
enum class SharingPolicy {
  kShared,   ///< capacity divided among flows (normal LAN/WAN link)
  kFatpipe,  ///< each flow independently capped at capacity (backbone)
};

struct HostSpec {
  std::string name;
  double speed_flops = 1e9;               ///< peak speed, flop/s
  sg::trace::Trace availability;          ///< scales speed over time (empty = 1.0)
  sg::trace::Trace state;                 ///< 1 = up, 0 = down (empty = always up)
};

struct LinkSpec {
  std::string name;
  double bandwidth_Bps = 1.25e8;          ///< byte/s
  double latency_s = 1e-4;                ///< seconds
  SharingPolicy policy = SharingPolicy::kShared;
  sg::trace::Trace availability;          ///< scales bandwidth over time
  sg::trace::Trace state;                 ///< 1 = up, 0 = down
};

/// A resolved route between two hosts.
struct Route {
  std::vector<LinkId> links;
  double latency = 0.0;  ///< sum of link latencies (precomputed)
};

class Platform {
public:
  // -- construction ---------------------------------------------------------
  NodeId add_host(const HostSpec& spec);
  NodeId add_host(const std::string& name, double speed_flops);
  NodeId add_router(const std::string& name);
  LinkId add_link(const LinkSpec& spec);
  LinkId add_link(const std::string& name, double bandwidth_Bps, double latency_s,
                  SharingPolicy policy = SharingPolicy::kShared);

  /// Graph mode: declare that `link` connects netpoints a and b (undirected).
  void add_edge(NodeId a, NodeId b, LinkId link);

  /// Explicit mode: full route between two hosts. When symmetric, the
  /// reversed route serves dst->src as well. Explicit routes always win over
  /// graph-derived ones.
  void add_route(NodeId src, NodeId dst, std::vector<LinkId> links, bool symmetric = true);

  /// Freeze the topology: validate and build the routing adjacency.
  /// O(nodes + edges) — shortest paths are resolved lazily by route().
  void seal();
  bool sealed() const { return sealed_; }

  // -- lookup ---------------------------------------------------------------
  size_t host_count() const { return hosts_.size(); }
  size_t link_count() const { return links_.size(); }
  size_t node_count() const { return node_names_.size(); }

  bool is_host(NodeId node) const;
  /// Host index (0..host_count) for a host node id.
  int host_index(NodeId node) const;
  /// Node id of the i-th host.
  NodeId host_node(int host_index) const;

  const HostSpec& host(int host_index) const { return hosts_[static_cast<size_t>(host_index)]; }
  HostSpec& host_mutable(int host_index) { return hosts_[static_cast<size_t>(host_index)]; }
  const LinkSpec& link(LinkId id) const { return links_[static_cast<size_t>(id)]; }
  LinkSpec& link_mutable(LinkId id) { return links_[static_cast<size_t>(id)]; }

  const std::string& node_name(NodeId node) const { return node_names_[static_cast<size_t>(node)]; }

  std::optional<NodeId> node_by_name(const std::string& name) const;
  std::optional<int> host_by_name(const std::string& name) const;
  std::optional<LinkId> link_by_name(const std::string& name) const;

  /// Route between two hosts (by host index), resolved on demand and
  /// memoized. The returned reference stays valid for the platform's
  /// lifetime. Throws xbt::InvalidArgument (naming both hosts) when the
  /// platform is not sealed or the pair is unreachable.
  const Route& route(int src_host, int dst_host) const;
  bool reachable(int src_host, int dst_host) const;

  /// All (undirected) graph edges, for export/inspection.
  struct Edge { NodeId a; NodeId b; LinkId link; };
  const std::vector<Edge>& edges() const { return edges_; }

  // -- cache introspection (tests/benches) ----------------------------------
  /// Number of (src, dst) routes resolved (or explicitly declared) so far.
  size_t resolved_route_count() const { return route_store_.size(); }
  /// Number of memoized single-source shortest-path trees currently held.
  size_t cached_sssp_tree_count() const { return sssp_cache_.size(); }
  /// Capacity of the SSSP-tree LRU: max(routing/sssp-cache, hosts/16),
  /// fixed at seal() time.
  size_t sssp_cache_capacity() const { return sssp_cache_cap_; }

private:
  struct NodeRec {
    bool host = false;
    int host_index = -1;
  };

  /// Single-source shortest-path tree, indexed by NodeId.
  struct SsspTree {
    std::vector<double> dist;
    std::vector<NodeId> prev_node;
    std::vector<LinkId> prev_link;
    std::uint64_t last_used = 0;  ///< LRU tick; hits bump it in O(1)
  };

  static std::uint64_t pair_key(int src_host, int dst_host) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src_host)) << 32) |
           static_cast<std::uint32_t>(dst_host);
  }

  void check_host_index(int host_index, const char* what) const;
  /// Memoized Dijkstra from `src` (latency metric, tiny per-hop epsilon so
  /// zero-latency LANs still prefer fewer hops). LRU-bounded: at most
  /// kSsspCacheCap trees are kept, each O(nodes) — resolved Routes themselves
  /// are cached forever, so evicting a tree only costs re-running Dijkstra.
  const SsspTree& sssp_from(NodeId src) const;

  std::vector<std::string> node_names_;
  std::vector<NodeRec> nodes_;
  std::vector<HostSpec> hosts_;
  std::vector<NodeId> host_nodes_;
  std::vector<LinkSpec> links_;
  std::vector<Edge> edges_;
  std::unordered_map<std::string, NodeId> node_index_;  ///< name -> node id
  std::unordered_map<std::string, LinkId> link_index_;  ///< name -> link id

  /// adjacency: node -> (neighbor, link); built by seal().
  std::vector<std::vector<std::pair<NodeId, LinkId>>> adj_;

  /// Resolved routes keyed by (src, dst) host-index pair. Explicit routes
  /// are inserted eagerly (they pre-empt lazy resolution); graph-derived
  /// routes are added on first query. The index is open-addressing (linear
  /// probing over a power-of-2 table): a lookup is one probe run through a
  /// flat array instead of a hash-node chase — route() is on the hot path of
  /// every communication start. Routes themselves live in a deque, whose
  /// references stay stable across growth; that is what keeps `const Route&`
  /// call sites valid.
  static constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};
  mutable std::vector<std::uint64_t> route_keys_;   ///< kEmptyKey = free slot
  mutable std::vector<std::uint32_t> route_slots_;  ///< parallel: index into route_store_
  mutable std::deque<Route> route_store_;

  Route* route_find(std::uint64_t key) const;
  /// Existing record for key, or a freshly inserted empty one.
  Route& route_slot(std::uint64_t key) const;
  void route_index_grow() const;

  size_t sssp_cache_cap_ = 64;  ///< adjusted by seal() (config + host count)
  /// LRU by last_used tick: a cache hit is an O(1) counter bump; eviction
  /// scans for the minimum, which a Dijkstra run (the reason we are
  /// evicting) dwarfs even at the hosts/16 adaptive capacity.
  mutable std::unordered_map<NodeId, SsspTree> sssp_cache_;
  mutable std::uint64_t sssp_tick_ = 0;

  Route loopback_route_;  ///< shared empty self-route
  bool sealed_ = false;
};

}  // namespace sg::platform
