/// \file platform.hpp
/// Virtual platform description: hosts (computing resources), links
/// (point-to-point communication resources), routers, and multi-hop routes.
///
/// Two routing styles are supported, matching the paper's "simulation of
/// complex communications (multi-hop routing)":
///  * explicit routes:  add_route(src, dst, {links...})
///  * graph mode:       add_edge(nodeA, nodeB, link) + seal() computes
///                      latency-shortest paths between all host pairs.
/// Topologies may also be imported from generators (see sg::topo, BRITE).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace sg::platform {

using NodeId = int;  ///< index of a netpoint (host or router)
using LinkId = int;  ///< index of a link

/// How concurrent flows share a link's bandwidth.
enum class SharingPolicy {
  kShared,   ///< capacity divided among flows (normal LAN/WAN link)
  kFatpipe,  ///< each flow independently capped at capacity (backbone)
};

struct HostSpec {
  std::string name;
  double speed_flops = 1e9;               ///< peak speed, flop/s
  sg::trace::Trace availability;          ///< scales speed over time (empty = 1.0)
  sg::trace::Trace state;                 ///< 1 = up, 0 = down (empty = always up)
};

struct LinkSpec {
  std::string name;
  double bandwidth_Bps = 1.25e8;          ///< byte/s
  double latency_s = 1e-4;                ///< seconds
  SharingPolicy policy = SharingPolicy::kShared;
  sg::trace::Trace availability;          ///< scales bandwidth over time
  sg::trace::Trace state;                 ///< 1 = up, 0 = down
};

/// A resolved route between two hosts.
struct Route {
  std::vector<LinkId> links;
  double latency = 0.0;  ///< sum of link latencies (precomputed)
};

class Platform {
public:
  // -- construction ---------------------------------------------------------
  NodeId add_host(const HostSpec& spec);
  NodeId add_host(const std::string& name, double speed_flops);
  NodeId add_router(const std::string& name);
  LinkId add_link(const LinkSpec& spec);
  LinkId add_link(const std::string& name, double bandwidth_Bps, double latency_s,
                  SharingPolicy policy = SharingPolicy::kShared);

  /// Graph mode: declare that `link` connects netpoints a and b (undirected).
  void add_edge(NodeId a, NodeId b, LinkId link);

  /// Explicit mode: full route between two hosts. When symmetric, the
  /// reversed route serves dst->src as well.
  void add_route(NodeId src, NodeId dst, std::vector<LinkId> links, bool symmetric = true);

  /// Freeze the topology: validate, and in graph mode compute all-pairs
  /// shortest paths (Dijkstra per host, latency metric; bandwidth breaks ties
  /// in favour of fatter paths). Explicit routes always win over derived ones.
  void seal();
  bool sealed() const { return sealed_; }

  // -- lookup ---------------------------------------------------------------
  size_t host_count() const { return hosts_.size(); }
  size_t link_count() const { return links_.size(); }
  size_t node_count() const { return node_names_.size(); }

  bool is_host(NodeId node) const;
  /// Host index (0..host_count) for a host node id.
  int host_index(NodeId node) const;
  /// Node id of the i-th host.
  NodeId host_node(int host_index) const;

  const HostSpec& host(int host_index) const { return hosts_[static_cast<size_t>(host_index)]; }
  HostSpec& host_mutable(int host_index) { return hosts_[static_cast<size_t>(host_index)]; }
  const LinkSpec& link(LinkId id) const { return links_[static_cast<size_t>(id)]; }
  LinkSpec& link_mutable(LinkId id) { return links_[static_cast<size_t>(id)]; }

  const std::string& node_name(NodeId node) const { return node_names_[static_cast<size_t>(node)]; }

  std::optional<NodeId> node_by_name(const std::string& name) const;
  std::optional<int> host_by_name(const std::string& name) const;
  std::optional<LinkId> link_by_name(const std::string& name) const;

  /// Route between two hosts (by host index). Throws if unreachable.
  const Route& route(int src_host, int dst_host) const;
  bool reachable(int src_host, int dst_host) const;

  /// All (undirected) graph edges, for export/inspection.
  struct Edge { NodeId a; NodeId b; LinkId link; };
  const std::vector<Edge>& edges() const { return edges_; }

private:
  struct NodeRec {
    bool host = false;
    int host_index = -1;
  };

  void compute_graph_routes();

  std::vector<std::string> node_names_;
  std::vector<NodeRec> nodes_;
  std::vector<HostSpec> hosts_;
  std::vector<NodeId> host_nodes_;
  std::vector<LinkSpec> links_;
  std::vector<Edge> edges_;

  // routes_[src * host_count + dst]; empty optional = unreachable
  std::vector<std::optional<Route>> routes_;
  bool sealed_ = false;
};

}  // namespace sg::platform
