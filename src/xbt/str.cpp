#include "xbt/str.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace sg::xbt {

std::vector<std::string> split(std::string_view s, char delim, bool skip_empty) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (true) {
    size_t next = s.find(delim, pos);
    std::string_view token = s.substr(pos, next == std::string_view::npos ? std::string_view::npos : next - pos);
    if (!token.empty() || !skip_empty)
      out.emplace_back(token);
    if (next == std::string_view::npos)
      break;
    pos = next + 1;
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i])))
      ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i])))
      ++i;
    if (i > start)
      out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
    ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
    --e;
  return std::string(s.substr(b, e - b));
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string format(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out(static_cast<size_t>(n), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  va_end(ap2);
  return out;
}

}  // namespace sg::xbt
