/// \file settings.hpp
/// sg::config — the typed configuration registry.
///
/// The raw xbt::Config store keeps every value as a double or a string
/// behind a string key, which made call sites stringly-typed and left the
/// set of valid keys implicit. This layer declares each key ONCE with a
/// static type, a default, a description, and (optionally) the environment
/// variable that seeds it, and hands out typed key handles:
///
///   namespace cfg = sg::config;
///   constexpr cfg::IntKey kThreads{"engine/threads"};
///   cfg::declare(kThreads, 1, 1, 1024, "worker threads", "SG_THREADS");
///   int n = cfg::get(kThreads);
///
/// The registry is a veneer over xbt::Config::instance(): values still live
/// in the string-keyed store (flags and ints as doubles), so existing raw
/// `Config::set("engine/sharding", 0.0)` call sites and the --cfg=key:value
/// passthrough keep working unchanged. What the registry adds:
///   * typed getters/setters — reading a key with the wrong handle kind
///     throws instead of silently reinterpreting,
///   * int range validation at set/get time,
///   * env-var seeding as a declared, documented property of the key (the
///     variable is read once, when the key is declared),
///   * a machine-readable key table (sg::config::keys()) backing the README
///     and the unknown-key diagnostics.
#pragma once

#include <string>
#include <vector>

namespace sg::config {

enum class Type { kFlag, kInt, kNumber, kString };

/// Typed key handles. Intentionally trivial (a tagged name) so keys can be
/// constexpr constants next to the module that owns them.
struct FlagKey { const char* name; };    ///< boolean (stored as 0.0 / 1.0)
struct IntKey { const char* name; };     ///< integer with a declared range
struct NumberKey { const char* name; };  ///< double
struct StringKey { const char* name; };  ///< string

/// Declare a key (idempotent: re-declaring keeps the current value, like
/// xbt::Config). `env`, when given, names the environment variable whose
/// value seeds the default the first time the key is declared — the
/// documented replacement for ad-hoc getenv() paths.
void declare(FlagKey key, bool default_value, const std::string& description,
             const char* env = nullptr);
void declare(IntKey key, long default_value, long min, long max, const std::string& description,
             const char* env = nullptr);
void declare(NumberKey key, double default_value, const std::string& description,
             const char* env = nullptr);
void declare(StringKey key, const std::string& default_value, const std::string& description,
             const char* env = nullptr);

/// Typed reads. Throw xbt::InvalidArgument when the key was never declared
/// (listing the valid keys) or was declared with a different type.
bool get(FlagKey key);
long get(IntKey key);
double get(NumberKey key);
std::string get(StringKey key);

/// Typed writes, same diagnostics as the getters; IntKey enforces its range.
void set(FlagKey key, bool value);
void set(IntKey key, long value);
void set(NumberKey key, double value);
void set(StringKey key, const std::string& value);

/// One row of the registry table (sorted by name): drives documentation and
/// the diagnostics that list valid keys.
struct KeyInfo {
  std::string name;
  Type type = Type::kNumber;
  std::string description;
  std::string env;  ///< seeding environment variable, empty if none
};
std::vector<KeyInfo> keys();

}  // namespace sg::config
