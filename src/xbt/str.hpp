/// \file str.hpp
/// Small string utilities shared across modules.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace sg::xbt {

/// Split on a delimiter; empty tokens are kept unless skip_empty.
std::vector<std::string> split(std::string_view s, char delim, bool skip_empty = false);

/// Split on any whitespace run; empty tokens never produced.
std::vector<std::string> split_ws(std::string_view s);

/// Strip leading/trailing whitespace.
std::string trim(std::string_view s);

std::string to_lower(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace sg::xbt
