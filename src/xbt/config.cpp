#include "xbt/config.hpp"

#include <cstdlib>

#include "xbt/exception.hpp"
#include "xbt/str.hpp"

namespace sg::xbt {

void Config::declare(const std::string& key, double default_value, std::string description) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    Entry e;
    e.num = default_value;
    e.description = std::move(description);
    entries_.emplace(key, std::move(e));
  }
}

void Config::declare_string(const std::string& key, const std::string& default_value, std::string description) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    Entry e;
    e.str = default_value;
    e.is_string = true;
    e.description = std::move(description);
    entries_.emplace(key, std::move(e));
  }
}

void Config::set(const std::string& key, double value) {
  auto it = entries_.find(key);
  if (it == entries_.end())
    throw_unknown(key);
  it->second.num = value;
}

void Config::set_string(const std::string& key, const std::string& value) {
  auto it = entries_.find(key);
  if (it == entries_.end())
    throw_unknown(key);
  it->second.str = value;
}

double Config::get(const std::string& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end())
    throw_unknown(key);
  return it->second.num;
}

const std::string& Config::get_string(const std::string& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end())
    throw_unknown(key);
  return it->second.str;
}

bool Config::known(const std::string& key) const { return entries_.count(key) != 0; }

std::vector<std::string> Config::known_keys() const {
  std::vector<std::string> keys;
  keys.reserve(entries_.size());
  for (const auto& [key, entry] : entries_)
    keys.push_back(key);
  return keys;  // entries_ is an ordered map, so this is already sorted
}

void Config::throw_unknown(const std::string& key) const {
  std::string msg = "unknown config key: " + key + " (valid keys:";
  if (entries_.empty()) {
    msg += " none declared yet";
  } else {
    bool first = true;
    for (const auto& [name, entry] : entries_) {
      msg += first ? " " : ", ";
      msg += name;
      first = false;
    }
  }
  msg += ")";
  throw InvalidArgument(msg);
}

void Config::apply(const std::string& spec) {
  for (const std::string& item : split(spec, ',', /*skip_empty=*/true)) {
    size_t colon = item.find(':');
    if (colon == std::string::npos)
      throw InvalidArgument("bad config item (want key:value): " + item);
    const std::string key = trim(item.substr(0, colon));
    const std::string value = trim(item.substr(colon + 1));
    auto it = entries_.find(key);
    if (it == entries_.end())
      throw_unknown(key);
    if (it->second.is_string)
      it->second.str = value;
    else
      it->second.num = std::strtod(value.c_str(), nullptr);
  }
}

Config& Config::instance() {
  static Config c;
  return c;
}

}  // namespace sg::xbt
