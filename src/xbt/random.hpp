/// \file random.hpp
/// Deterministic pseudo-random number generation.
///
/// Simulations must be reproducible bit-for-bit across runs and platforms,
/// so we avoid std::uniform_*_distribution (whose algorithms are
/// implementation-defined) and implement the distributions ourselves on top
/// of a fixed xoshiro256** core.
#pragma once

#include <cstdint>

namespace sg::xbt {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm),
/// seeded through splitmix64. Fully specified output sequence.
class Rng {
public:
  explicit Rng(std::uint64_t seed = 42) { reseed(seed); }

  void reseed(std::uint64_t seed);

  /// Raw 64 random bits.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive), unbiased via rejection.
  std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi);

  /// Exponentially distributed value with the given rate (mean 1/rate).
  double exponential(double rate);

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double normal(double mean, double stddev);

private:
  std::uint64_t state_[4];
};

}  // namespace sg::xbt
