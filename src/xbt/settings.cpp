#include "xbt/settings.hpp"

#include <cmath>
#include <cstdlib>
#include <map>

#include "xbt/config.hpp"
#include "xbt/exception.hpp"
#include "xbt/str.hpp"

namespace sg::config {
namespace {

struct Meta {
  Type type = Type::kNumber;
  long min = 0, max = 0;  ///< IntKey range
  std::string description;
  std::string env;
};

std::map<std::string, Meta>& registry() {
  static std::map<std::string, Meta> r;
  return r;
}

xbt::Config& store() { return xbt::Config::instance(); }

const char* type_name(Type t) {
  switch (t) {
    case Type::kFlag: return "flag";
    case Type::kInt: return "int";
    case Type::kNumber: return "number";
    case Type::kString: return "string";
  }
  return "?";
}

[[noreturn]] void throw_unknown(const char* key) {
  std::string msg = std::string("unknown config key: ") + key + " (valid keys:";
  bool first = true;
  for (const auto& [name, meta] : registry()) {
    msg += first ? " " : ", ";
    msg += name;
    first = false;
  }
  if (first)
    msg += " none declared yet";
  msg += ")";
  throw xbt::InvalidArgument(msg);
}

const Meta& require(const char* key, Type want) {
  auto it = registry().find(key);
  if (it == registry().end())
    throw_unknown(key);
  if (it->second.type != want)
    throw xbt::InvalidArgument(std::string("config key ") + key + " is a " +
                               type_name(it->second.type) + ", accessed as a " + type_name(want));
  return it->second;
}

/// Parse an env override for a numeric/flag key; flags accept 0/1 and
/// true/false/on/off/yes/no (case matters: these are config literals).
bool parse_env_number(const char* text, Type type, double* out) {
  const std::string v = xbt::trim(text);
  if (v.empty())
    return false;
  if (type == Type::kFlag) {
    if (v == "1" || v == "true" || v == "on" || v == "yes") { *out = 1.0; return true; }
    if (v == "0" || v == "false" || v == "off" || v == "no") { *out = 0.0; return true; }
  }
  char* end = nullptr;
  const double num = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0')
    return false;
  *out = num;
  return true;
}

void register_meta(const char* key, Type type, long min, long max, const std::string& description,
                   const char* env) {
  Meta& meta = registry()[key];
  meta.type = type;
  meta.min = min;
  meta.max = max;
  if (meta.description.empty())
    meta.description = description;
  if (env != nullptr)
    meta.env = env;
}

}  // namespace

void declare(FlagKey key, bool default_value, const std::string& description, const char* env) {
  double def = default_value ? 1.0 : 0.0;
  if (env != nullptr)
    if (const char* text = std::getenv(env))
      parse_env_number(text, Type::kFlag, &def);
  register_meta(key.name, Type::kFlag, 0, 0, description, env);
  store().declare(key.name, def, description);
}

void declare(IntKey key, long default_value, long min, long max, const std::string& description,
             const char* env) {
  double def = static_cast<double>(default_value);
  if (env != nullptr)
    if (const char* text = std::getenv(env))
      parse_env_number(text, Type::kInt, &def);
  register_meta(key.name, Type::kInt, min, max, description, env);
  store().declare(key.name, def, description);
}

void declare(NumberKey key, double default_value, const std::string& description, const char* env) {
  double def = default_value;
  if (env != nullptr)
    if (const char* text = std::getenv(env))
      parse_env_number(text, Type::kNumber, &def);
  register_meta(key.name, Type::kNumber, 0, 0, description, env);
  store().declare(key.name, def, description);
}

void declare(StringKey key, const std::string& default_value, const std::string& description,
             const char* env) {
  std::string def = default_value;
  if (env != nullptr)
    if (const char* text = std::getenv(env)) {
      const std::string v = xbt::trim(text);
      if (!v.empty())
        def = v;
    }
  register_meta(key.name, Type::kString, 0, 0, description, env);
  store().declare_string(key.name, def, description);
}

bool get(FlagKey key) {
  require(key.name, Type::kFlag);
  return store().get(key.name) != 0.0;
}

long get(IntKey key) {
  const Meta& meta = require(key.name, Type::kInt);
  const double raw = store().get(key.name);
  long value = std::lround(raw);
  // The raw store (and --cfg passthrough) can hold any double; clamp to the
  // declared range rather than propagating a nonsense thread/cache count.
  if (value < meta.min)
    value = meta.min;
  if (value > meta.max)
    value = meta.max;
  return value;
}

double get(NumberKey key) {
  require(key.name, Type::kNumber);
  return store().get(key.name);
}

std::string get(StringKey key) {
  require(key.name, Type::kString);
  return store().get_string(key.name);
}

void set(FlagKey key, bool value) {
  require(key.name, Type::kFlag);
  store().set(key.name, value ? 1.0 : 0.0);
}

void set(IntKey key, long value) {
  const Meta& meta = require(key.name, Type::kInt);
  if (value < meta.min || value > meta.max)
    throw xbt::InvalidArgument(std::string("config key ") + key.name + ": value " +
                               std::to_string(value) + " outside [" + std::to_string(meta.min) +
                               ", " + std::to_string(meta.max) + "]");
  store().set(key.name, static_cast<double>(value));
}

void set(NumberKey key, double value) {
  require(key.name, Type::kNumber);
  store().set(key.name, value);
}

void set(StringKey key, const std::string& value) {
  require(key.name, Type::kString);
  store().set_string(key.name, value);
}

std::vector<KeyInfo> keys() {
  std::vector<KeyInfo> out;
  out.reserve(registry().size());
  for (const auto& [name, meta] : registry()) {
    KeyInfo info;
    info.name = name;
    info.type = meta.type;
    info.description = meta.description;
    info.env = meta.env;
    out.push_back(std::move(info));
  }
  return out;
}

}  // namespace sg::config
