#include "xbt/log.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <vector>

namespace sg::xbt {
namespace {

struct Registry {
  std::mutex mutex;
  LogLevel default_threshold = LogLevel::info;
  std::map<std::string, LogLevel> controls;       // explicit per-category settings
  std::vector<LogCategory*> categories;           // every live category
  ClockProvider clock = nullptr;
  ActorNameProvider actor = nullptr;
};

Registry& registry() {
  static Registry r;
  return r;
}

bool env_applied = false;

void apply_env_once_locked(Registry& r) {
  if (env_applied)
    return;
  env_applied = true;
  if (const char* spec = std::getenv("SG_LOG")) {
    // Parse inline to avoid re-entrant locking.
    std::string s(spec);
    size_t pos = 0;
    while (pos < s.size()) {
      size_t comma = s.find(',', pos);
      std::string item = s.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
      size_t colon = item.find(':');
      if (colon != std::string::npos) {
        std::string cat = item.substr(0, colon);
        LogLevel level = log_level_from_string(item.substr(colon + 1));
        if (cat == "root")
          r.default_threshold = level;
        else
          r.controls[cat] = level;
      }
      if (comma == std::string::npos)
        break;
      pos = comma + 1;
    }
  }
}

}  // namespace

LogLevel log_level_from_string(const std::string& name) {
  std::string n = name;
  std::transform(n.begin(), n.end(), n.begin(), [](unsigned char c) { return std::tolower(c); });
  if (n == "trace") return LogLevel::trace;
  if (n == "debug") return LogLevel::debug;
  if (n == "verbose" || n == "verb") return LogLevel::verbose;
  if (n == "info") return LogLevel::info;
  if (n == "warning" || n == "warn") return LogLevel::warning;
  if (n == "error") return LogLevel::error;
  if (n == "critical") return LogLevel::critical;
  if (n == "off" || n == "none") return LogLevel::off;
  return LogLevel::info;
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::trace: return "TRACE";
    case LogLevel::debug: return "DEBUG";
    case LogLevel::verbose: return "VERB";
    case LogLevel::info: return "INFO";
    case LogLevel::warning: return "WARN";
    case LogLevel::error: return "ERROR";
    case LogLevel::critical: return "CRIT";
    case LogLevel::off: return "OFF";
  }
  return "?";
}

LogCategory::LogCategory(std::string name) : name_(std::move(name)), threshold_(LogLevel::info) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  apply_env_once_locked(r);
  auto it = r.controls.find(name_);
  threshold_ = (it != r.controls.end()) ? it->second : r.default_threshold;
  r.categories.push_back(this);
}

void LogCategory::log(LogLevel level, const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  vlog(level, fmt, ap);
  va_end(ap);
}

void LogCategory::vlog(LogLevel level, const char* fmt, va_list ap) {
  if (!enabled(level))
    return;
  char body[2048];
  std::vsnprintf(body, sizeof(body), fmt, ap);

  Registry& r = registry();
  char prefix[160];
  double now = r.clock ? r.clock() : -1.0;
  const char* who = r.actor ? r.actor() : nullptr;
  if (now >= 0.0 && who != nullptr)
    std::snprintf(prefix, sizeof(prefix), "[%10.6f] [%s/%s] (%s) ", now, name_.c_str(), log_level_name(level), who);
  else if (now >= 0.0)
    std::snprintf(prefix, sizeof(prefix), "[%10.6f] [%s/%s] ", now, name_.c_str(), log_level_name(level));
  else
    std::snprintf(prefix, sizeof(prefix), "[%s/%s] ", name_.c_str(), log_level_name(level));

  std::fprintf(stderr, "%s%s\n", prefix, body);
}

void log_control_set(const std::string& category, LogLevel level) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.controls[category] = level;
  for (LogCategory* cat : r.categories)
    if (cat->name() == category)
      cat->set_threshold(level);
}

void log_control_apply(const std::string& spec) {
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t comma = spec.find(',', pos);
    std::string item = spec.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    size_t colon = item.find(':');
    if (colon != std::string::npos) {
      std::string cat = item.substr(0, colon);
      LogLevel level = log_level_from_string(item.substr(colon + 1));
      if (cat == "root")
        log_set_default_threshold(level);
      else
        log_control_set(cat, level);
    }
    if (comma == std::string::npos)
      break;
    pos = comma + 1;
  }
}

void log_set_default_threshold(LogLevel level) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  r.default_threshold = level;
  for (LogCategory* cat : r.categories)
    if (r.controls.find(cat->name()) == r.controls.end())
      cat->set_threshold(level);
}

LogLevel log_default_threshold() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mutex);
  return r.default_threshold;
}

void log_set_clock_provider(ClockProvider provider) { registry().clock = provider; }
void log_set_actor_provider(ActorNameProvider provider) { registry().actor = provider; }

}  // namespace sg::xbt
