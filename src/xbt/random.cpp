#include "xbt/random.hpp"

#include <cmath>

namespace sg::xbt {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_)
    s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform01() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

std::uint64_t Rng::uniform_int(std::uint64_t lo, std::uint64_t hi) {
  const std::uint64_t range = hi - lo + 1;
  if (range == 0)  // full 64-bit range requested
    return next_u64();
  const std::uint64_t reject_above = UINT64_MAX - UINT64_MAX % range;
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= reject_above);
  return lo + v % range;
}

double Rng::exponential(double rate) {
  double u;
  do {
    u = uniform01();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

double Rng::normal(double mean, double stddev) {
  double u1;
  do {
    u1 = uniform01();
  } while (u1 <= 0.0);
  const double u2 = uniform01();
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

}  // namespace sg::xbt
