#include "xbt/units.hpp"

#include <cstdlib>
#include <map>

#include "xbt/exception.hpp"
#include "xbt/str.hpp"

namespace sg::xbt {
namespace {

/// Split "12.5MBps" into value 12.5 and unit "MBps".
std::pair<double, std::string> split_value_unit(const std::string& text) {
  const std::string t = trim(text);
  if (t.empty())
    throw InvalidArgument("empty quantity");
  char* end = nullptr;
  const double value = std::strtod(t.c_str(), &end);
  if (end == t.c_str())
    throw InvalidArgument("no numeric value in quantity: " + text);
  return {value, trim(std::string(end))};
}

double metric_multiplier(char prefix, bool binary) {
  const double k = binary ? 1024.0 : 1000.0;
  switch (prefix) {
    case 'k': case 'K': return k;
    case 'M': return k * k;
    case 'G': return k * k * k;
    case 'T': return k * k * k * k;
    case 'P': return k * k * k * k * k;
    default: throw InvalidArgument(std::string("unknown metric prefix: ") + prefix);
  }
}

}  // namespace

double parse_speed(const std::string& text) {
  auto [value, unit] = split_value_unit(text);
  if (unit.empty())
    return value;
  // Accept "f", "flops", optionally prefixed: "Mf", "Gflops".
  std::string u = unit;
  double mult = 1.0;
  if (u.size() > 1 && (u[0] == 'k' || u[0] == 'K' || u[0] == 'M' || u[0] == 'G' || u[0] == 'T' || u[0] == 'P')) {
    mult = metric_multiplier(u[0], false);
    u = u.substr(1);
  }
  std::string lu = to_lower(u);
  if (lu == "f" || lu == "flops" || lu == "flop/s")
    return value * mult;
  throw InvalidArgument("unknown speed unit: " + unit);
}

double parse_bandwidth(const std::string& text) {
  auto [value, unit] = split_value_unit(text);
  if (unit.empty())
    return value;
  std::string u = unit;
  double mult = 1.0;
  bool binary = u.find("i") != std::string::npos;  // KiBps etc.
  if (!u.empty() && (u[0] == 'k' || u[0] == 'K' || u[0] == 'M' || u[0] == 'G' || u[0] == 'T')) {
    mult = metric_multiplier(u[0], binary);
    u = u.substr(1);
    if (!u.empty() && u[0] == 'i')
      u = u.substr(1);
  }
  std::string lu = to_lower(u);
  if (lu == "bps" || lu == "b/s") {
    // Ambiguous 'b': follow SimGrid convention, capital B = bytes, lower = bits.
    const bool bits = !u.empty() && u[0] == 'b';
    return bits ? value * mult / 8.0 : value * mult;
  }
  throw InvalidArgument("unknown bandwidth unit: " + unit);
}

double parse_time(const std::string& text) {
  auto [value, unit] = split_value_unit(text);
  if (unit.empty())
    return value;
  static const std::map<std::string, double> table = {
      {"ns", 1e-9}, {"us", 1e-6}, {"ms", 1e-3}, {"s", 1.0},
      {"m", 60.0}, {"min", 60.0}, {"h", 3600.0}, {"d", 86400.0},
  };
  auto it = table.find(to_lower(unit));
  if (it == table.end())
    throw InvalidArgument("unknown time unit: " + unit);
  return value * it->second;
}

double parse_size(const std::string& text) {
  auto [value, unit] = split_value_unit(text);
  if (unit.empty())
    return value;
  std::string u = unit;
  double mult = 1.0;
  const bool binary = u.find('i') != std::string::npos;
  if (!u.empty() && (u[0] == 'k' || u[0] == 'K' || u[0] == 'M' || u[0] == 'G' || u[0] == 'T' || u[0] == 'P')) {
    mult = metric_multiplier(u[0], binary);
    u = u.substr(1);
    if (!u.empty() && u[0] == 'i')
      u = u.substr(1);
  }
  if (u == "B")
    return value * mult;
  if (u == "b")
    return value * mult / 8.0;
  throw InvalidArgument("unknown size unit: " + unit);
}

}  // namespace sg::xbt
