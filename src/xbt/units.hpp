/// \file units.hpp
/// Parsing of human-readable quantities used in platform files:
/// speeds ("100Mf", "2Gf"), bandwidths ("125MBps", "1Gbps"), times
/// ("10ms", "1.5s"), sizes ("3.2MB"). All values normalize to SI base
/// units: flop/s, byte/s, seconds, bytes.
#pragma once

#include <string>

namespace sg::xbt {

/// Parse a CPU speed, e.g. "100Mf" -> 1e8 flop/s. A bare number is flop/s.
double parse_speed(const std::string& text);

/// Parse a bandwidth, e.g. "125MBps" -> 1.25e8 B/s, "1Gbps" -> 1.25e8 B/s.
/// A bare number is bytes/s.
double parse_bandwidth(const std::string& text);

/// Parse a duration, e.g. "50us" -> 5e-5 s. A bare number is seconds.
double parse_time(const std::string& text);

/// Parse a data size, e.g. "3.2MB" -> 3.2e6 bytes, "10KiB" -> 10240 bytes.
/// A bare number is bytes.
double parse_size(const std::string& text);

}  // namespace sg::xbt
