/// \file config.hpp
/// Typed key/value configuration store for model parameters
/// (e.g. "network/tcp-gamma", "network/weight-s"), mirroring SimGrid's
/// --cfg mechanism.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace sg::xbt {

class Config {
public:
  /// Register a key with its default. Re-registration keeps the current value.
  void declare(const std::string& key, double default_value, std::string description = "");
  void declare_string(const std::string& key, const std::string& default_value, std::string description = "");

  void set(const std::string& key, double value);
  void set_string(const std::string& key, const std::string& value);

  double get(const std::string& key) const;
  const std::string& get_string(const std::string& key) const;

  bool known(const std::string& key) const;

  /// All declared key names, sorted (backs the unknown-key diagnostics and
  /// the sg::config registry listing).
  std::vector<std::string> known_keys() const;

  /// Apply "key:value,key:value" (used for argv --cfg=... passthrough).
  void apply(const std::string& spec);

  /// Global instance used by the simulation models.
  static Config& instance();

private:
  struct Entry {
    double num = 0.0;
    std::string str;
    bool is_string = false;
    std::string description;
  };
  [[noreturn]] void throw_unknown(const std::string& key) const;

  std::map<std::string, Entry> entries_;
};

}  // namespace sg::xbt
