/// \file log.hpp
/// Hierarchical, category-based logging, modeled after SimGrid's XBT logging
/// subsystem.  Each subsystem declares a category; verbosity is configured
/// per category at runtime (programmatically or via the SG_LOG environment
/// variable, e.g. `SG_LOG=surf:debug,msg:verbose`).
#pragma once

#include <cstdarg>
#include <string>

namespace sg::xbt {

/// Severity levels, lowest (most verbose) first.
enum class LogLevel : int {
  trace = 0,
  debug = 1,
  verbose = 2,
  info = 3,
  warning = 4,
  error = 5,
  critical = 6,
  off = 7,
};

/// Parse a level name ("debug", "info", ...). Unknown names map to info.
LogLevel log_level_from_string(const std::string& name);
const char* log_level_name(LogLevel level);

/// A named logging category. Instances should have static storage duration;
/// they register themselves in a global registry on first use.
class LogCategory {
public:
  explicit LogCategory(std::string name);

  const std::string& name() const { return name_; }
  LogLevel threshold() const { return threshold_; }
  void set_threshold(LogLevel level) { threshold_ = level; }

  bool enabled(LogLevel level) const { return level >= threshold_; }

  /// printf-style logging entry point.
  void log(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 3, 4)));
  void vlog(LogLevel level, const char* fmt, va_list ap);

private:
  std::string name_;
  LogLevel threshold_;
};

/// Set the threshold of a category by name (affects future and existing
/// categories with that exact name).
void log_control_set(const std::string& category, LogLevel level);

/// Apply a control string such as "surf:debug,msg:info" or "root:warning".
/// "root" applies to every category without an explicit setting.
void log_control_apply(const std::string& spec);

/// Default threshold for categories without an explicit setting.
void log_set_default_threshold(LogLevel level);
LogLevel log_default_threshold();

/// The engine installs a clock provider so log lines carry simulated time.
using ClockProvider = double (*)();
void log_set_clock_provider(ClockProvider provider);

/// Actor name provider (installed by the kernel) so log lines identify the
/// simulated process that emitted them, as SimGrid does.
using ActorNameProvider = const char* (*)();
void log_set_actor_provider(ActorNameProvider provider);

}  // namespace sg::xbt

/// Declare a file-local category. Usage:
///   SG_LOG_NEW_CATEGORY(surf, "SURF kernel");
#define SG_LOG_NEW_CATEGORY(id, desc) \
  static ::sg::xbt::LogCategory sg_log_cat_##id(#id)

#define SG_CLOG(id, level, ...)                                       \
  do {                                                                \
    if (sg_log_cat_##id.enabled(::sg::xbt::LogLevel::level))          \
      sg_log_cat_##id.log(::sg::xbt::LogLevel::level, __VA_ARGS__);   \
  } while (0)

#define SG_DEBUG(id, ...) SG_CLOG(id, debug, __VA_ARGS__)
#define SG_VERB(id, ...) SG_CLOG(id, verbose, __VA_ARGS__)
#define SG_INFO(id, ...) SG_CLOG(id, info, __VA_ARGS__)
#define SG_WARN(id, ...) SG_CLOG(id, warning, __VA_ARGS__)
#define SG_ERROR(id, ...) SG_CLOG(id, error, __VA_ARGS__)
