/// \file exception.hpp
/// Exception hierarchy thrown by blocking simulation calls, mirroring the
/// error conditions of the paper's APIs: timeouts on MSG_task_get /
/// gras_msg_wait, host failures from state traces, network failures when a
/// link dies mid-transfer, and cancellation.
#pragma once

#include <stdexcept>
#include <string>

namespace sg::xbt {

/// Base class for all simulation-level errors.
class Exception : public std::runtime_error {
public:
  explicit Exception(const std::string& what) : std::runtime_error(what) {}
};

/// A blocking call did not complete before its deadline.
class TimeoutException : public Exception {
public:
  explicit TimeoutException(const std::string& what = "timeout") : Exception(what) {}
};

/// The host running the actor (or the peer host) failed.
class HostFailureException : public Exception {
public:
  explicit HostFailureException(const std::string& what = "host failure") : Exception(what) {}
};

/// A link on the route failed while a communication was in flight.
class NetworkFailureException : public Exception {
public:
  explicit NetworkFailureException(const std::string& what = "network failure") : Exception(what) {}
};

/// The activity was cancelled by another actor.
class CancelException : public Exception {
public:
  explicit CancelException(const std::string& what = "cancelled") : Exception(what) {}
};

/// Misuse of the API (unknown host, bad argument...).
class InvalidArgument : public Exception {
public:
  explicit InvalidArgument(const std::string& what) : Exception(what) {}
};

}  // namespace sg::xbt
