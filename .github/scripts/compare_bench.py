#!/usr/bin/env python3
"""Compare benchmark JSON against a baseline and fail on regressions.

Supports three input shapes:
  * google-benchmark JSON ("benchmarks" entries with "real_time", in ns
    unless "time_unit" says otherwise) — BENCH_maxmin.json
  * our engine-bench JSON ("benchmarks" entries with "wall_time_s") —
    BENCH_engine.json, BENCH_fault_churn.json; this includes the sharded-
    churn series (sharded_churn/* and sharded_scaleout/*), whose wall times
    gate like every other engine benchmark
  * memory metrics ("benchmarks" entries with "bytes") — the bytes-per-
    action, bytes-per-flow, routing_bytes_per_host and (per-zone solver
    shard) solver_bytes_per_shard records in BENCH_engine.json
  * throughput rates ("benchmarks" entries whose primary metric is
    "events_per_sec", with no wall_time_s/bytes) — the thread_scaling/*
    rows in BENCH_engine.json. These gate HIGHER-is-better: the job fails
    when current < baseline * (1 - threshold).

Entries may also carry secondary metrics (events_per_sec, us_per_event,
ns_per_route, sim_time_s, parallel_efficiency, serial_fraction, ...).
Those are informational: they are printed alongside the tracked metric as
"name#key" rows but never fail the job — the primary wall time / bytes
value is what gates. serial_fraction (the profiler-measured share of
run_until() outside the parallel fan-outs) is lower-is-better like a
time, so its raw ratio already reads "above 1.00 = worse"; ratios of
metrics named in HIGHER_IS_BETTER are inverted on display so every
printed ratio reads the same way.

Tracked time/bytes metrics are lower-is-better: a benchmark regresses
when current > baseline * (1 + threshold). Tracked rate metrics are
higher-is-better: they regress when current < baseline * (1 - threshold). Benchmarks present on only one side
are reported but never fail the job, and a missing baseline file skips the
comparison entirely (first run on a branch, expired artifact, ...).

Sub-millisecond timings are compared with a 1 ms absolute floor so scheduler
noise on shared CI runners cannot fail the job on a microbenchmark. Memory
metrics are deterministic, so no floor applies to them.

Usage: compare_bench.py BASELINE CURRENT [--threshold 0.25]
"""

import argparse
import json
import os
import sys

ABS_FLOOR_S = 1e-3


PRIMARY_KEYS = ("bytes", "wall_time_s", "real_time", "time_unit", "name")

# Informational metrics where larger is better; their display ratio is
# inverted so the table reads uniformly (above 1.00 = worse).
HIGHER_IS_BETTER = {"events_per_sec", "spawn_per_sec", "wakeups_per_sec",
                    "speedup_vs_1_thread", "parallel_efficiency"}


def load_metrics(path):
    """name -> (value, kind): kind 'time' (seconds), 'bytes' or 'rate'
    (events/s, higher is better) gates; 'info' rows are printed but
    never fail."""
    with open(path) as fh:
        data = json.load(fh)
    metrics = {}
    unit_scale = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}
    for entry in data.get("benchmarks", []):
        name = entry.get("name")
        if name is None:
            continue
        if "bytes" in entry:
            metrics[name] = (float(entry["bytes"]), "bytes")
        elif "wall_time_s" not in entry and "events_per_sec" in entry:
            metrics[name] = (float(entry["events_per_sec"]), "rate")
        elif "wall_time_s" in entry:
            metrics[name] = (float(entry["wall_time_s"]), "time")
        elif "real_time" in entry:
            scale = unit_scale.get(entry.get("time_unit", "ns"), 1e-9)
            metrics[name] = (float(entry["real_time"]) * scale, "time")
        # Secondary metrics only exist in the engine-bench shape; google-
        # benchmark entries carry bookkeeping numbers (family_index,
        # iterations, cpu_time, ...) that would drown the table.
        if "wall_time_s" not in entry and "bytes" not in entry \
                and metrics.get(name, (0, ""))[1] != "rate":
            continue
        for key, value in entry.items():
            if key in PRIMARY_KEYS or not isinstance(value, (int, float)):
                continue
            if metrics.get(name, (0, ""))[1] == "rate" and key == "events_per_sec":
                continue  # already the primary metric of this entry
            metrics[f"{name}#{key}"] = (float(value), "info")
    return metrics


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="fractional increase that fails the job (default 0.25)")
    args = parser.parse_args()

    if not os.path.exists(args.baseline):
        print(f"no baseline at {args.baseline} — skipping comparison "
              "(first run, or the main artifact expired)")
        return 0
    if not os.path.exists(args.current):
        print(f"error: current results missing at {args.current}")
        return 1

    baseline = load_metrics(args.baseline)
    current = load_metrics(args.current)

    regressions = []
    print(f"{'benchmark':50s} {'baseline':>14s} {'current':>14s} {'ratio':>8s}")
    for name in sorted(current):
        cur, kind = current[name]
        if name not in baseline:
            print(f"{name:50s} {'(new)':>14s} {cur:14.6f} {'':>8s}")
            continue
        base, _ = baseline[name]
        ratio = cur / base if base > 0 else float("inf")
        if kind == "rate" or (kind == "info"
                              and name.rsplit("#", 1)[-1] in HIGHER_IS_BETTER and cur > 0):
            # Invert so every printed ratio reads "above 1.00 = worse".
            ratio = base / cur if cur > 0 else float("inf")
        noise_floor = ABS_FLOOR_S if kind == "time" else 0.0
        flag = ""
        if kind in ("time", "bytes") and cur > base * (1.0 + args.threshold) and cur > noise_floor:
            flag = "  REGRESSED"
            regressions.append((name, base, cur, ratio))
        elif kind == "rate" and cur < base * (1.0 - args.threshold):
            flag = "  REGRESSED"
            regressions.append((name, base, cur, ratio))
        print(f"{name:50s} {base:14.6f} {cur:14.6f} {ratio:8.2f}{flag}")
    for name in sorted(set(baseline) - set(current)):
        print(f"{name:50s} {baseline[name][0]:14.6f} {'(gone)':>14s}")

    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed more than "
              f"{args.threshold:.0%} vs the main baseline:")
        for name, base, cur, ratio in regressions:
            print(f"  {name}: {base:.6f} -> {cur:.6f} ({ratio:.2f}x)")
        return 1
    print("\nno benchmark regressed beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
