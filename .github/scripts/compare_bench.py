#!/usr/bin/env python3
"""Compare benchmark JSON against a baseline and fail on regressions.

Supports two input shapes:
  * google-benchmark JSON ("benchmarks" entries with "real_time", in ns
    unless "time_unit" says otherwise) — BENCH_maxmin.json
  * our engine-bench JSON ("benchmarks" entries with "wall_time_s") —
    BENCH_engine.json

All tracked metrics are wall times: lower is better. A benchmark regresses
when current > baseline * (1 + threshold). Benchmarks present on only one
side are reported but never fail the job, and a missing baseline file skips
the comparison entirely (first run on a branch, expired artifact, ...).

Sub-millisecond timings are compared with a 1 ms absolute floor so scheduler
noise on shared CI runners cannot fail the job on a microbenchmark.

Usage: compare_bench.py BASELINE CURRENT [--threshold 0.25]
"""

import argparse
import json
import os
import sys

ABS_FLOOR_S = 1e-3


def load_times(path):
    """name -> wall time in seconds."""
    with open(path) as fh:
        data = json.load(fh)
    times = {}
    unit_scale = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}
    for entry in data.get("benchmarks", []):
        name = entry.get("name")
        if name is None:
            continue
        if "wall_time_s" in entry:
            times[name] = float(entry["wall_time_s"])
        elif "real_time" in entry:
            scale = unit_scale.get(entry.get("time_unit", "ns"), 1e-9)
            times[name] = float(entry["real_time"]) * scale
    return times


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="fractional slowdown that fails the job (default 0.25)")
    args = parser.parse_args()

    if not os.path.exists(args.baseline):
        print(f"no baseline at {args.baseline} — skipping comparison "
              "(first run, or the main artifact expired)")
        return 0
    if not os.path.exists(args.current):
        print(f"error: current results missing at {args.current}")
        return 1

    baseline = load_times(args.baseline)
    current = load_times(args.current)

    regressions = []
    print(f"{'benchmark':50s} {'baseline':>12s} {'current':>12s} {'ratio':>8s}")
    for name in sorted(current):
        cur = current[name]
        if name not in baseline:
            print(f"{name:50s} {'(new)':>12s} {cur:12.6f} {'':>8s}")
            continue
        base = baseline[name]
        ratio = cur / base if base > 0 else float("inf")
        flag = ""
        if cur > base * (1.0 + args.threshold) and cur > ABS_FLOOR_S:
            flag = "  REGRESSED"
            regressions.append((name, base, cur, ratio))
        print(f"{name:50s} {base:12.6f} {cur:12.6f} {ratio:8.2f}{flag}")
    for name in sorted(set(baseline) - set(current)):
        print(f"{name:50s} {baseline[name]:12.6f} {'(gone)':>12s}")

    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed more than "
              f"{args.threshold:.0%} vs the main baseline:")
        for name, base, cur, ratio in regressions:
            print(f"  {name}: {base:.6f}s -> {cur:.6f}s ({ratio:.2f}x)")
        return 1
    print("\nno benchmark regressed beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
